#include "core/refine.h"

#include <algorithm>
#include <unordered_map>

#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace bbsmine {

namespace {

/// Approximate resident bytes of one candidate during SequentialScan:
/// itemset data + counter + bookkeeping.
uint64_t CandidateBytes(const Candidate& candidate) {
  return 32 + 4 * static_cast<uint64_t>(candidate.items.size());
}

/// Counts, for every candidate in [begin, end), its occurrences among the
/// transactions at positions [first_txn, last_txn). `present` is a caller-
/// provided scratch array of dense.size() zeros (left zeroed on return).
void CountBatchOverRange(
    const TransactionDatabase& db,
    const std::unordered_map<ItemId, uint32_t>& dense,
    const std::vector<std::vector<uint32_t>>& dense_items, size_t begin,
    size_t end, size_t first_txn, size_t last_txn,
    std::vector<uint8_t>* present, std::vector<uint64_t>* counts) {
  std::vector<uint32_t> touched;
  for (size_t t = first_txn; t < last_txn; ++t) {
    const Transaction& txn = db.At(t);
    touched.clear();
    for (ItemId item : txn.items) {
      auto it = dense.find(item);
      if (it != dense.end()) {
        (*present)[it->second] = 1;
        touched.push_back(it->second);
      }
    }
    for (size_t c = begin; c < end; ++c) {
      bool contained = true;
      for (uint32_t d : dense_items[c]) {
        if (!(*present)[d]) {
          contained = false;
          break;
        }
      }
      if (contained) ++(*counts)[c - begin];
    }
    for (uint32_t d : touched) (*present)[d] = 0;
  }
}

}  // namespace

std::vector<Pattern> RefineSequentialScan(
    const TransactionDatabase& db, const std::vector<Candidate>& candidates,
    uint64_t tau, uint64_t memory_budget_bytes, MineStats* stats,
    size_t num_threads, obs::Tracer* tracer) {
  std::vector<Pattern> frequent;
  if (candidates.empty()) return frequent;

  // Dense remapping of every item mentioned by any candidate, so that the
  // per-transaction membership test is an array lookup.
  std::unordered_map<ItemId, uint32_t> dense;
  std::vector<std::vector<uint32_t>> dense_items(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    dense_items[c].reserve(candidates[c].items.size());
    for (ItemId item : candidates[c].items) {
      auto [it, _] = dense.emplace(item, static_cast<uint32_t>(dense.size()));
      dense_items[c].push_back(it->second);
    }
  }

  size_t threads = std::min(ResolveThreads(num_threads), db.size());
  if (threads == 0) threads = 1;

  size_t begin = 0;
  while (begin < candidates.size()) {
    // Fill one memory batch.
    size_t end = begin;
    uint64_t used = 0;
    while (end < candidates.size()) {
      uint64_t bytes = CandidateBytes(candidates[end]);
      if (memory_budget_bytes != 0 && end > begin &&
          used + bytes > memory_budget_bytes) {
        break;
      }
      used += bytes;
      ++end;
    }

    // One sequential pass over the database per batch, regardless of the
    // thread count (parallel workers split the same pass, they don't repeat
    // it — the I/O charge must match).
    obs::TraceSpan span(tracer, obs::kTraceRefine, "refine.batch");
    span.AddArg("candidates", end - begin);
    std::vector<uint64_t> counts(end - begin, 0);
    if (stats != nullptr) {
      ++stats->db_scans;
      db.ChargeFullScan(&stats->io);
    }
    if (threads <= 1) {
      Stopwatch cpu;
      std::vector<uint8_t> present(dense.size(), 0);
      CountBatchOverRange(db, dense, dense_items, begin, end, 0, db.size(),
                          &present, &counts);
      if (stats != nullptr) stats->refine_cpu_seconds += cpu.ElapsedSeconds();
    } else {
      // Disjoint transaction ranges; per-thread counts summed element-wise
      // afterwards (addition commutes, so the totals are schedule-
      // independent and identical to the serial scan).
      std::vector<std::vector<uint64_t>> chunk_counts(
          threads, std::vector<uint64_t>(end - begin, 0));
      std::vector<double> chunk_cpu(threads, 0.0);
      size_t per_chunk = (db.size() + threads - 1) / threads;
      uint64_t queue_depth = 0;
      ParallelFor(
          threads, threads,
          [&](size_t chunk) {
            size_t first_txn = chunk * per_chunk;
            size_t last_txn = std::min(db.size(), first_txn + per_chunk);
            if (first_txn >= last_txn) return;
            Stopwatch cpu;
            std::vector<uint8_t> present(dense.size(), 0);
            CountBatchOverRange(db, dense, dense_items, begin, end, first_txn,
                                last_txn, &present, &chunk_counts[chunk]);
            chunk_cpu[chunk] = cpu.ElapsedSeconds();
          },
          &queue_depth);
      for (const std::vector<uint64_t>& chunk : chunk_counts) {
        for (size_t c = 0; c < counts.size(); ++c) counts[c] += chunk[c];
      }
      if (stats != nullptr) {
        for (double s : chunk_cpu) stats->refine_cpu_seconds += s;
        stats->max_queue_depth = std::max(stats->max_queue_depth, queue_depth);
      }
    }

    for (size_t c = begin; c < end; ++c) {
      if (counts[c - begin] >= tau) {
        frequent.push_back(
            Pattern{candidates[c].items, counts[c - begin], SupportKind::kExact});
      } else if (stats != nullptr) {
        ++stats->false_drops;
        stats->false_drops_by_depth.Add(candidates[c].items.size());
      }
    }
    begin = end;
  }
  return frequent;
}

namespace {

/// Probes one transaction position, charging I/O through the cache model
/// when present. Returns whether the transaction contains `items`.
bool ProbeOne(const TransactionDatabase& db, const Itemset& items,
              size_t position, PageCache* cache, MineStats* stats) {
  if (stats != nullptr) ++stats->probed_transactions;
  IoStats* io = stats != nullptr ? &stats->io : nullptr;
  const Transaction* txn;
  if (cache != nullptr) {
    const TidIndex& index = db.tid_index();
    uint32_t block_size = db.block_size();
    // When the pool can hold the whole file, first-touch misses amount to
    // loading the file once; probe-heavy access then costs one sequential
    // sweep, not a seek per block. With a smaller pool, re-misses are
    // genuine seeks.
    bool pool_covers_db =
        cache->capacity() >= BlocksFor(db.SerializedBytes(), block_size);
    uint64_t first_block = index.BlockOf(position, block_size);
    uint64_t span = index.BlockSpan(position, block_size);
    for (uint64_t b = 0; b < span; ++b) {
      cache->Access(first_block + b, /*sequential=*/pool_covers_db, io);
    }
    txn = &db.At(position);
  } else {
    txn = &db.Probe(position, io);
  }
  return IsSubsetOf(items, txn->items);
}

}  // namespace

uint64_t ProbeCount(const TransactionDatabase& db, const Itemset& items,
                    const TidSet& result, PageCache* cache, MineStats* stats,
                    std::vector<uint32_t>* matching_tids) {
  if (matching_tids != nullptr) matching_tids->clear();
  uint64_t count = 0;
  auto visit = [&](uint32_t position) {
    if (ProbeOne(db, items, position, cache, stats)) {
      ++count;
      if (matching_tids != nullptr) matching_tids->push_back(position);
    }
  };
  if (result.sparse()) {
    for (uint32_t position : result.tids()) visit(position);
  } else {
    for (size_t p = result.dense().FindNext(0); p != BitVector::npos;
         p = result.dense().FindNext(p + 1)) {
      visit(static_cast<uint32_t>(p));
    }
  }
  return count;
}

uint64_t ProbeCount(const TransactionDatabase& db, const Itemset& items,
                    const BitVector& result, PageCache* cache,
                    MineStats* stats, BitVector* matching) {
  uint64_t count = 0;
  if (matching != nullptr) {
    matching->Resize(result.size());
    matching->Clear();
  }
  for (size_t position = result.FindNext(0); position != BitVector::npos;
       position = result.FindNext(position + 1)) {
    if (ProbeOne(db, items, position, cache, stats)) {
      ++count;
      if (matching != nullptr) matching->Set(position);
    }
  }
  return count;
}

}  // namespace bbsmine
