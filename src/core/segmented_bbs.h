// A segmented BBS: the index partitioned into fixed-capacity transaction
// segments, each a self-contained BbsIndex.
//
// Motivation (paper Section 3.1, postprocessing phase): "we read sufficient
// vectors of BBS that fit into the memory ... we repeat this process by
// reading the next portion of BBS, and accumulating the counts". A
// monolithic bit-sliced file cannot be appended to on disk (every slice
// grows by one bit per transaction), but a segmented file can: only the
// open tail segment changes, sealed segments are immutable. Segments are
// also the unit of streaming — CountItemSet accumulates per-segment counts,
// touching one segment's slices at a time, which is exactly the chunked
// pass the adaptive algorithm describes.
//
// SegmentedBbs mirrors the counting API of BbsIndex and adds segment-level
// persistence (one file per segment plus a manifest).
//
// Segments are also the unit of parallelism: CountItemSet and CountPerSegment
// accept a thread count and fan the independent per-segment queries out over
// a ParallelFor, merging counts (and per-segment IoStats) deterministically
// in segment order. The query path is thread-safe: concurrent counting calls
// from many threads are fine; Insert requires exclusive access.

#ifndef BBSMINE_CORE_SEGMENTED_BBS_H_
#define BBSMINE_CORE_SEGMENTED_BBS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/bbs_index.h"
#include "obs/trace.h"

namespace bbsmine {

/// A BBS split into fixed-capacity segments.
class SegmentedBbs {
 public:
  /// Creates an empty segmented index; each segment holds up to
  /// `segment_capacity` transactions. Fails on invalid config or zero
  /// capacity.
  static Result<SegmentedBbs> Create(const BbsConfig& config,
                                     uint64_t segment_capacity);

  const BbsConfig& config() const { return config_; }
  uint64_t segment_capacity() const { return segment_capacity_; }

  /// Total transactions across all segments.
  size_t num_transactions() const { return num_transactions_; }

  /// Number of segments (including the open tail segment).
  size_t num_segments() const { return segments_.size(); }

  /// Read access to one segment.
  const BbsIndex& segment(size_t idx) const { return segments_[idx]; }

  /// Appends one transaction (canonical itemset) to the tail segment,
  /// opening a new segment when the tail is full. Fails only if a new
  /// segment cannot be created.
  Status Insert(const Itemset& items);

  /// Bulk helper: inserts every transaction of `db` in order (parity with
  /// BbsIndex::InsertAll). Fails only if a new segment cannot be created;
  /// on failure the transactions before the failing one remain inserted.
  Status InsertAll(const class TransactionDatabase& db);

  /// Range variant: inserts the `count` transactions of `db` starting at
  /// position `first`. Used by incremental workloads (e.g. one day's batch
  /// of a growing log) that append a suffix of a shared database.
  Status InsertAll(const class TransactionDatabase& db, size_t first,
                   size_t count);

  /// Estimated number of transactions containing `items`, accumulated
  /// segment by segment (never an underestimate, as for BbsIndex). If `io`
  /// is non-null each segment's touched slices are charged. With
  /// `num_threads` > 1 the segments are counted in parallel (0 = one thread
  /// per hardware thread); the result and the IoStats total are identical
  /// to the serial run. `tracer`, when non-null, records one kTraceKernel
  /// span per segment count (opt-in category) under an overall span.
  size_t CountItemSet(const Itemset& items, IoStats* io = nullptr,
                      size_t num_threads = 1,
                      obs::Tracer* tracer = nullptr) const;

  /// Per-segment counts for `items` (diagnostics / targeted probing: the
  /// caller learns which segments can contain matches). `num_threads` as in
  /// CountItemSet.
  std::vector<size_t> CountPerSegment(const Itemset& items,
                                      size_t num_threads = 1) const;

  /// Exact occurrence count of a single item across segments.
  /// Requires config().track_item_counts.
  uint64_t ExactItemCount(ItemId item) const;

  /// Total serialized size of all segments, in bytes.
  uint64_t SerializedBytes() const;

  /// Writes the index as `<prefix>.manifest` plus one
  /// `<prefix>.seg<N>` file per segment. Sealed segments whose files
  /// already exist are rewritten (callers may skip unchanged ones by
  /// managing prefixes per epoch).
  Status Save(const std::string& prefix) const;

  /// Reads an index previously written by Save.
  static Result<SegmentedBbs> Load(const std::string& prefix);

  bool operator==(const SegmentedBbs& other) const;

 private:
  SegmentedBbs(const BbsConfig& config, uint64_t segment_capacity)
      : config_(config), segment_capacity_(segment_capacity) {}

  Status AppendSegment();

  BbsConfig config_;
  uint64_t segment_capacity_;
  size_t num_transactions_ = 0;
  std::vector<BbsIndex> segments_;
};

}  // namespace bbsmine

#endif  // BBSMINE_CORE_SEGMENTED_BBS_H_
