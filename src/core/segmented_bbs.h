// A segmented BBS: the index partitioned into fixed-capacity transaction
// segments, each a self-contained BbsIndex.
//
// Motivation (paper Section 3.1, postprocessing phase): "we read sufficient
// vectors of BBS that fit into the memory ... we repeat this process by
// reading the next portion of BBS, and accumulating the counts". A
// monolithic bit-sliced file cannot be appended to on disk (every slice
// grows by one bit per transaction), but a segmented file can: only the
// open tail segment changes, sealed segments are immutable. Segments are
// also the unit of streaming — CountItemSet accumulates per-segment counts,
// touching one segment's slices at a time, which is exactly the chunked
// pass the adaptive algorithm describes.
//
// SegmentedBbs mirrors the counting API of BbsIndex and adds segment-level
// persistence (one file per segment plus a manifest).
//
// Segments are also the unit of parallelism: CountItemSet and CountPerSegment
// accept a thread count and fan the independent per-segment queries out over
// a ParallelFor, merging counts (and per-segment IoStats) deterministically
// in segment order. The query path is thread-safe: concurrent counting calls
// from many threads are fine; Insert requires exclusive access.

#ifndef BBSMINE_CORE_SEGMENTED_BBS_H_
#define BBSMINE_CORE_SEGMENTED_BBS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/bbs_index.h"
#include "obs/trace.h"
#include "util/file_io.h"

namespace bbsmine {

/// One segment file's manifest entry: its transaction count and the CRC-32
/// of the complete serialized file. The CRC binds manifest and segment
/// files into one generation — a manifest paired with a stale or
/// mixed-generation segment set fails Load with Corruption instead of
/// silently combining files from different saves.
struct SegmentFileInfo {
  uint64_t num_transactions = 0;
  uint32_t crc = 0;
};

/// Path of segment `idx` under `prefix` ("<prefix>.seg<idx>").
std::string SegmentFilePath(const std::string& prefix, size_t idx);

/// Writes `<prefix>.manifest` (atomic replace) describing already-written
/// segment files. The manifest is the commit point of a multi-file save:
/// callers write every segment first, then publish them all at once here.
/// `epoch` stamps the generation (0 for offline saves; checkpoint saves
/// record the covered snapshot epoch).
Status WriteSegmentedManifest(const std::string& prefix, uint64_t capacity,
                              uint64_t num_transactions, uint64_t epoch,
                              const std::vector<SegmentFileInfo>& segments,
                              const WriteFileOptions& options =
                                  WriteFileOptions());

/// A BBS split into fixed-capacity segments.
class SegmentedBbs {
 public:
  /// Creates an empty segmented index; each segment holds up to
  /// `segment_capacity` transactions. Fails on invalid config or zero
  /// capacity.
  static Result<SegmentedBbs> Create(const BbsConfig& config,
                                     uint64_t segment_capacity);

  const BbsConfig& config() const { return config_; }
  uint64_t segment_capacity() const { return segment_capacity_; }

  /// Total transactions across all segments.
  size_t num_transactions() const { return num_transactions_; }

  /// Number of segments (including the open tail segment).
  size_t num_segments() const { return segments_.size(); }

  /// Read access to one segment.
  const BbsIndex& segment(size_t idx) const { return segments_[idx]; }

  /// Appends one transaction (canonical itemset) to the tail segment,
  /// opening a new segment when the tail is full. Fails only if a new
  /// segment cannot be created.
  Status Insert(const Itemset& items);

  /// Bulk helper: inserts every transaction of `db` in order (parity with
  /// BbsIndex::InsertAll). Fails only if a new segment cannot be created;
  /// on failure the transactions before the failing one remain inserted.
  Status InsertAll(const class TransactionDatabase& db);

  /// Range variant: inserts the `count` transactions of `db` starting at
  /// position `first`. Used by incremental workloads (e.g. one day's batch
  /// of a growing log) that append a suffix of a shared database.
  Status InsertAll(const class TransactionDatabase& db, size_t first,
                   size_t count);

  /// Estimated number of transactions containing `items`, accumulated
  /// segment by segment (never an underestimate, as for BbsIndex). If `io`
  /// is non-null each segment's touched slices are charged. With
  /// `num_threads` > 1 the segments are counted in parallel (0 = one thread
  /// per hardware thread); the result and the IoStats total are identical
  /// to the serial run. `tracer`, when non-null, records one kTraceKernel
  /// span per segment count (opt-in category) under an overall span.
  size_t CountItemSet(const Itemset& items, IoStats* io = nullptr,
                      size_t num_threads = 1,
                      obs::Tracer* tracer = nullptr) const;

  /// Per-segment counts for `items` (diagnostics / targeted probing: the
  /// caller learns which segments can contain matches). `num_threads` as in
  /// CountItemSet.
  std::vector<size_t> CountPerSegment(const Itemset& items,
                                      size_t num_threads = 1) const;

  /// Exact occurrence count of a single item across segments.
  /// Requires config().track_item_counts.
  uint64_t ExactItemCount(ItemId item) const;

  /// Total serialized size of all segments, in bytes.
  uint64_t SerializedBytes() const;

  /// Writes the index as one `<prefix>.seg<N>` file per segment plus
  /// `<prefix>.manifest`. The segment files are written first and the
  /// manifest last (atomically), so a crash mid-save leaves either the
  /// previous complete generation or the new one — never a manifest
  /// pointing at missing or stale segments. Sealed segments whose files
  /// already exist are rewritten (callers may skip unchanged ones by
  /// managing prefixes per epoch).
  Status Save(const std::string& prefix) const;

  /// Reads an index previously written by Save (or by a checkpoint).
  /// With the resident backend, each segment file's CRC is verified against
  /// the manifest and Load fails with Corruption on an epoch-inconsistent
  /// (mixed-generation) segment set. With the mmap backend, segments are
  /// opened zero-copy (BbsIndex::OpenMmap): each file's v2 header checksum
  /// and structural bounds are verified and its transaction count is
  /// cross-checked against the manifest, but the full-file CRC binding is
  /// deliberately skipped — verifying it would fault in every slice page
  /// and defeat lazy serving (docs/FORMATS.md covers the trade-off).
  /// `epoch`, when non-null, receives the generation stamp the manifest
  /// was saved with.
  static Result<SegmentedBbs> Load(
      const std::string& prefix, uint64_t* epoch = nullptr,
      IndexBackend backend = IndexBackend::kResident);

  /// Fold compaction of one sealed segment (cold-tier rewrite): replaces
  /// segment `idx` with its Fold(new_bits) — resident — image. Counts from
  /// the folded segment remain upper bounds, so the filter-and-refine
  /// pipeline keeps working; the segment's serialized size shrinks by
  /// roughly num_bits/new_bits. Fails on the open tail segment (it still
  /// takes inserts at full width), on an already-narrower segment, or on
  /// an out-of-range target.
  Status FoldSegment(size_t idx, uint32_t new_bits);

  bool operator==(const SegmentedBbs& other) const;

 private:
  SegmentedBbs(const BbsConfig& config, uint64_t segment_capacity)
      : config_(config), segment_capacity_(segment_capacity) {}

  Status AppendSegment();

  BbsConfig config_;
  uint64_t segment_capacity_;
  size_t num_transactions_ = 0;
  std::vector<BbsIndex> segments_;
};

}  // namespace bbsmine

#endif  // BBSMINE_CORE_SEGMENTED_BBS_H_
