#include "core/approximate.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/dual_filter.h"
#include "core/filter_engine.h"

namespace bbsmine {

double PoissonCdf(double lambda, uint64_t k) {
  if (lambda <= 0) return 1.0;
  // Far in the right tail the CDF is 1 for all practical purposes.
  double sigma = std::sqrt(lambda);
  if (static_cast<double>(k) >= lambda + 10 * sigma + 10) return 1.0;
  if (lambda > 700) {
    // Normal approximation with continuity correction (the exact series
    // would overflow/underflow long doubles around here).
    double z = (static_cast<double>(k) + 0.5 - lambda) / sigma;
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
  }
  // Exact series: e^-lambda * sum_{i<=k} lambda^i / i!.
  double term = std::exp(-lambda);
  double sum = term;
  for (uint64_t i = 1; i <= k; ++i) {
    term *= lambda / static_cast<double>(i);
    sum += term;
    if (term < 1e-18 && static_cast<double>(i) > lambda) break;
  }
  return sum > 1.0 ? 1.0 : sum;
}

std::vector<ApproxPattern> MineApproximate(const BbsIndex& bbs,
                                           const ApproxMineConfig& config,
                                           const Itemset& universe,
                                           MineStats* stats) {
  uint64_t tau = AbsoluteThreshold(config.min_support,
                                   bbs.num_transactions());
  FilterEngine engine(bbs, tau);
  engine.Prepare(universe, stats);
  DualFilterOutput out = RunDualFilter(engine, stats);

  std::vector<ApproxPattern> result;
  result.reserve(out.certain.size() + out.uncertain.size());

  for (DualCandidate& c : out.certain) {
    ApproxPattern p;
    p.items = std::move(c.items);
    p.est = c.est;
    p.confidence = 1.0;
    p.certified = true;
    result.push_back(std::move(p));
  }

  // Deflated support estimates a-hat(X), keyed by itemset, built bottom-up
  // (every candidate's sub-itemsets of size |X|-1 that follow the walk's
  // prefix structure are themselves candidates, so ascending-length
  // processing makes parent lookups succeed; missing parents fall back to
  // their raw estimates).
  //
  // For each leave-one-out decomposition X = parent u {i}, the observable
  // match rate among parent containers,
  //     q_i = est(X) / a-hat(parent),
  // mixes the true containment rate p_i with chance coverage:
  //     q_i = p_i + (1 - p_i) * c_i,
  // where c_i is the *measured* fraction of all transactions whose
  // signatures cover the bits item i adds beyond the parent (measured on
  // the actual slices, so discrete item aliasing is captured). Solving for
  // p_i gives a support estimate a_i = a-hat(parent) * p_i; when c_i ~ 1
  // the signature carries no information about i and the estimate falls
  // back to the independence prior a-hat(parent) * act(i)/N. The final
  // a-hat(X) is the most pessimistic decomposition, and
  //     confidence = P[Poisson(a-hat(X)) >= tau].
  std::map<Itemset, double> deflated;
  for (const DualCandidate& c : out.certain) {
    deflated.emplace(c.items, static_cast<double>(c.count));
  }

  // Ascending-length processing order.
  std::vector<DualCandidate*> ordered;
  ordered.reserve(out.uncertain.size());
  for (DualCandidate& c : out.uncertain) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const DualCandidate* a, const DualCandidate* b) {
              return a->items.size() < b->items.size();
            });

  std::vector<ApproxPattern> uncertain_out;
  BitVector matches;
  BitVector scratch;
  Itemset parent;
  std::vector<uint32_t> item_positions;
  std::vector<uint32_t> parent_positions;
  double n = static_cast<double>(bbs.num_transactions());
  for (DualCandidate* c : ordered) {
    uint64_t est = bbs.CountItemSet(c->items, &matches);
    double support_hat = static_cast<double>(est);

    if (c->items.size() > 1) {
      for (size_t skip = 0; skip < c->items.size(); ++skip) {
        ItemId item = c->items[skip];
        parent.clear();
        for (size_t j = 0; j < c->items.size(); ++j) {
          if (j != skip) parent.push_back(c->items[j]);
        }

        // a-hat(parent): deflated if known, singleton-exact, else est.
        double parent_hat;
        if (parent.size() == 1 && bbs.tracks_item_counts()) {
          parent_hat = static_cast<double>(bbs.ExactItemCount(parent[0]));
        } else if (auto it = deflated.find(parent); it != deflated.end()) {
          parent_hat = it->second;
        } else {
          parent_hat = static_cast<double>(bbs.CountItemSet(parent));
        }
        if (parent_hat <= 0) {
          support_hat = 0;
          break;
        }

        // c_i: fraction of all transactions whose signatures cover the
        // bits `item` adds beyond the parent, measured on the real slices.
        bbs.ItemPositions(item, &item_positions);
        BitVector parent_sig = bbs.MakeSignature(parent);
        scratch.Resize(bbs.num_transactions());
        scratch.SetAll();
        bool has_unique_bit = false;
        size_t cover = bbs.num_transactions();
        for (uint32_t pos : item_positions) {
          if (parent_sig.Get(pos)) continue;  // bit already required
          has_unique_bit = true;
          const SliceView slice = bbs.Slice(pos);
          cover = scratch.AndWithCount(slice.words, slice.num_words);
        }
        double coverage =
            !has_unique_bit || n == 0
                ? 1.0
                : static_cast<double>(cover) / n;

        // Invert q = p + (1-p)c. Near c = 1 the signature is
        // uninformative about `item`; fall back to the independence prior.
        double q = std::min(1.0, static_cast<double>(est) / parent_hat);
        double p;
        if (coverage > 0.999) {
          p = bbs.tracks_item_counts() && n > 0
                  ? static_cast<double>(bbs.ExactItemCount(item)) / n
                  : q;
        } else {
          p = std::clamp((q - coverage) / (1.0 - coverage), 0.0, 1.0);
        }
        support_hat = std::min(support_hat, parent_hat * p);
      }
    }

    // Confidence that the true support reaches tau, with the deflated
    // estimate as a Poisson mean.
    double confidence = 1.0 - PoissonCdf(support_hat, tau > 0 ? tau - 1 : 0);
    deflated.emplace(c->items, support_hat);

    if (confidence < config.min_confidence) continue;
    ApproxPattern p;
    p.items = std::move(c->items);
    p.est = est;
    p.confidence = confidence;
    p.certified = false;
    uncertain_out.push_back(std::move(p));
  }

  result.insert(result.end(), std::make_move_iterator(uncertain_out.begin()),
                std::make_move_iterator(uncertain_out.end()));
  return result;
}

}  // namespace bbsmine
