// Condensed representations of a frequent-pattern collection.
//
// The full set of frequent itemsets is highly redundant (every subset of a
// frequent itemset is frequent); consumers usually want one of the standard
// condensations:
//   * closed patterns  — no proper superset has the same support (lossless:
//     the full set and every support is recoverable);
//   * maximal patterns — no proper superset is frequent at all (lossy but
//     smallest).
// These are post-processing utilities over any miner's exact output.

#ifndef BBSMINE_CORE_PATTERN_SETS_H_
#define BBSMINE_CORE_PATTERN_SETS_H_

#include <vector>

#include "core/mining_types.h"

namespace bbsmine {

/// Returns the closed patterns of `patterns` (which must carry exact
/// supports and contain all frequent itemsets, e.g. any exact miner's
/// output). Order: lexicographic by itemset.
std::vector<Pattern> ClosedPatterns(const std::vector<Pattern>& patterns);

/// Returns the maximal patterns of `patterns` (same contract). Order:
/// lexicographic by itemset.
std::vector<Pattern> MaximalPatterns(const std::vector<Pattern>& patterns);

/// Recovers the support of `items` from a *closed*-pattern collection: the
/// maximum support among closed supersets of `items`, or 0 when `items` is
/// not frequent (has no closed superset).
uint64_t SupportFromClosed(const std::vector<Pattern>& closed,
                           const Itemset& items);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_PATTERN_SETS_H_
