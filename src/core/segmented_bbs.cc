#include "core/segmented_bbs.h"

#include "storage/transaction_db.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/thread_pool.h"

namespace bbsmine {

namespace {

// "BBSSEG02": v2 adds a save-epoch stamp and per-segment {txn count, file
// CRC} entries so Load can prove the manifest and the segment files belong
// to the same save generation.
constexpr char kManifestMagic[8] = {'B', 'B', 'S', 'S', 'E', 'G', '0', '2'};
constexpr size_t kManifestFixedPayload = 32;  // capacity, count, txns, epoch
constexpr size_t kManifestPerSegment = 12;    // txn count u64 + file crc u32

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t ParseU32(const std::string& in, size_t* pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 4;
  return v;
}

uint64_t ParseU64(const std::string& in, size_t* pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 8;
  return v;
}

}  // namespace

std::string SegmentFilePath(const std::string& prefix, size_t idx) {
  return prefix + ".seg" + std::to_string(idx);
}

Status WriteSegmentedManifest(const std::string& prefix, uint64_t capacity,
                              uint64_t num_transactions, uint64_t epoch,
                              const std::vector<SegmentFileInfo>& segments,
                              const WriteFileOptions& options) {
  std::string payload;
  payload.reserve(kManifestFixedPayload +
                  kManifestPerSegment * segments.size());
  AppendU64(&payload, capacity);
  AppendU64(&payload, segments.size());
  AppendU64(&payload, num_transactions);
  AppendU64(&payload, epoch);
  for (const SegmentFileInfo& info : segments) {
    AppendU64(&payload, info.num_transactions);
    AppendU32(&payload, info.crc);
  }

  std::string file;
  file.append(kManifestMagic, sizeof(kManifestMagic));
  AppendU32(&file, Crc32(payload));
  file += payload;
  return WriteBinaryFile(prefix + ".manifest", file, options);
}

Result<SegmentedBbs> SegmentedBbs::Create(const BbsConfig& config,
                                          uint64_t segment_capacity) {
  if (segment_capacity == 0) {
    return Status::InvalidArgument("segment_capacity must be positive");
  }
  // Validate the config by building the first segment.
  Result<BbsIndex> first = BbsIndex::Create(config);
  if (!first.ok()) return first.status();
  SegmentedBbs out(config, segment_capacity);
  out.segments_.push_back(std::move(first).value());
  return out;
}

Status SegmentedBbs::AppendSegment() {
  Result<BbsIndex> segment = BbsIndex::Create(config_);
  if (!segment.ok()) return segment.status();
  segments_.push_back(std::move(segment).value());
  return Status::Ok();
}

Status SegmentedBbs::Insert(const Itemset& items) {
  if (segments_.back().num_transactions() >= segment_capacity_) {
    BBSMINE_RETURN_IF_ERROR(AppendSegment());
  }
  // A tail opened from an mmap'd file is read-only; first insert copies it
  // to the resident backend (sealed segments stay zero-copy).
  if (!segments_.back().resident()) {
    segments_.back() = segments_.back().Materialize();
  }
  segments_.back().Insert(items);
  ++num_transactions_;
  return Status::Ok();
}

Status SegmentedBbs::InsertAll(const TransactionDatabase& db) {
  return InsertAll(db, 0, db.size());
}

Status SegmentedBbs::InsertAll(const TransactionDatabase& db, size_t first,
                               size_t count) {
  if (first > db.size() || count > db.size() - first) {
    return Status::OutOfRange("InsertAll range past end of database");
  }
  for (size_t t = first; t < first + count; ++t) {
    BBSMINE_RETURN_IF_ERROR(Insert(db.At(t).items));
  }
  return Status::Ok();
}

size_t SegmentedBbs::CountItemSet(const Itemset& items, IoStats* io,
                                  size_t num_threads,
                                  obs::Tracer* tracer) const {
  obs::TraceSpan span(tracer, obs::kTraceKernel, "segbbs.count");
  span.AddArg("items", items.size());
  span.AddArg("segments", segments_.size());
  // Each worker charges a private per-segment IoStats; the merge below runs
  // in segment order, so both the count and the I/O totals are identical to
  // the serial pass regardless of the thread schedule.
  std::vector<size_t> counts(segments_.size(), 0);
  std::vector<IoStats> segment_io(io != nullptr ? segments_.size() : 0);
  ParallelFor(num_threads, segments_.size(), [&](size_t idx) {
    obs::TraceSpan segment_span(tracer, obs::kTraceKernel, "segbbs.segment");
    segment_span.AddArg("segment", idx);
    counts[idx] = segments_[idx].CountItemSet(
        items, nullptr, io != nullptr ? &segment_io[idx] : nullptr);
  });
  size_t total = 0;
  for (size_t count : counts) total += count;
  if (io != nullptr) {
    for (const IoStats& per_segment : segment_io) *io += per_segment;
  }
  return total;
}

std::vector<size_t> SegmentedBbs::CountPerSegment(const Itemset& items,
                                                  size_t num_threads) const {
  std::vector<size_t> counts(segments_.size(), 0);
  ParallelFor(num_threads, segments_.size(), [&](size_t idx) {
    counts[idx] = segments_[idx].CountItemSet(items);
  });
  return counts;
}

uint64_t SegmentedBbs::ExactItemCount(ItemId item) const {
  uint64_t total = 0;
  for (const BbsIndex& segment : segments_) {
    total += segment.ExactItemCount(item);
  }
  return total;
}

uint64_t SegmentedBbs::SerializedBytes() const {
  uint64_t total = 0;
  for (const BbsIndex& segment : segments_) {
    total += segment.SerializedBytes();
  }
  return total;
}

Status SegmentedBbs::Save(const std::string& prefix) const {
  // Segments first, manifest last: the manifest's atomic rename is the
  // commit point, and until it lands any previous manifest keeps describing
  // the previous (still intact, CRC-verified) generation.
  std::vector<SegmentFileInfo> infos;
  infos.reserve(segments_.size());
  for (size_t idx = 0; idx < segments_.size(); ++idx) {
    std::string image = segments_[idx].Serialize();
    BBSMINE_RETURN_IF_ERROR(
        WriteBinaryFile(SegmentFilePath(prefix, idx), image));
    infos.push_back(
        SegmentFileInfo{segments_[idx].num_transactions(), Crc32(image)});
  }
  return WriteSegmentedManifest(prefix, segment_capacity_, num_transactions_,
                                /*epoch=*/0, infos);
}

Status SegmentedBbs::FoldSegment(size_t idx, uint32_t new_bits) {
  if (idx >= segments_.size()) {
    return Status::OutOfRange("no segment " + std::to_string(idx));
  }
  if (idx + 1 == segments_.size()) {
    return Status::InvalidArgument(
        "cannot fold the open tail segment (it still takes inserts)");
  }
  BbsIndex& segment = segments_[idx];
  if (new_bits == 0 || new_bits > segment.num_bits()) {
    return Status::InvalidArgument("fold target must be in (0, num_bits]");
  }
  if (segment.is_folded() && segment.num_bits() <= new_bits) {
    return Status::InvalidArgument("segment already folded at least as far");
  }
  segment = segment.Fold(new_bits);
  return Status::Ok();
}

Result<SegmentedBbs> SegmentedBbs::Load(const std::string& prefix,
                                        uint64_t* epoch,
                                        IndexBackend backend) {
  Result<std::string> contents = ReadBinaryFile(prefix + ".manifest");
  if (!contents.ok()) return contents.status();
  const std::string& file = *contents;
  const size_t header = sizeof(kManifestMagic) + 4;
  if (file.size() < header + kManifestFixedPayload ||
      file.compare(0, sizeof(kManifestMagic), kManifestMagic,
                   sizeof(kManifestMagic)) != 0) {
    return Status::Corruption("bad manifest " + prefix);
  }
  size_t pos = sizeof(kManifestMagic);
  uint32_t expected_crc = ParseU32(file, &pos);
  if (Crc32(std::string_view(file.data() + pos, file.size() - pos)) !=
      expected_crc) {
    return Status::Corruption("manifest checksum mismatch " + prefix);
  }
  uint64_t capacity = ParseU64(file, &pos);
  uint64_t segment_count = ParseU64(file, &pos);
  uint64_t num_transactions = ParseU64(file, &pos);
  uint64_t save_epoch = ParseU64(file, &pos);
  if (capacity == 0 || segment_count == 0) {
    return Status::Corruption("degenerate manifest " + prefix);
  }
  if (file.size() !=
      header + kManifestFixedPayload + kManifestPerSegment * segment_count) {
    return Status::Corruption("manifest size disagrees with segment count " +
                              prefix);
  }

  std::vector<BbsIndex> segments;
  segments.reserve(segment_count);
  uint64_t loaded_transactions = 0;
  for (size_t idx = 0; idx < segment_count; ++idx) {
    uint64_t manifest_txns = ParseU64(file, &pos);
    uint32_t manifest_crc = ParseU32(file, &pos);
    const std::string path = SegmentFilePath(prefix, idx);
    Result<BbsIndex> segment = Status::Internal("unset");
    if (backend == IndexBackend::kMmap) {
      // Zero-copy open: header CRC + structural bounds only. The full-file
      // CRC below would fault in every slice page, so the mmap path trades
      // the whole-generation binding for lazy serving (see header comment).
      segment = BbsIndex::OpenMmap(path);
    } else {
      Result<std::string> image = ReadBinaryFile(path);
      if (!image.ok()) return image.status();
      // The file CRC ties this segment to this manifest's generation: a
      // segment left over from (or overwritten by) a different save fails
      // here even though it is a perfectly valid BbsIndex on its own.
      if (Crc32(*image) != manifest_crc) {
        return Status::Corruption("segment file " + path +
                                  " does not match manifest (stale or "
                                  "mixed-generation segment set)");
      }
      segment = BbsIndex::Deserialize(*image, path);
    }
    if (!segment.ok()) return segment.status();
    if (segment->num_transactions() != manifest_txns) {
      return Status::Corruption("segment " + path +
                                " transaction count disagrees with manifest");
    }
    loaded_transactions += segment->num_transactions();
    segments.push_back(std::move(segment).value());
  }
  if (loaded_transactions != num_transactions) {
    return Status::Corruption("segment transaction counts disagree with "
                              "manifest for " + prefix);
  }

  if (epoch != nullptr) *epoch = save_epoch;
  SegmentedBbs out(segments.front().config(), capacity);
  out.segments_ = std::move(segments);
  out.num_transactions_ = loaded_transactions;
  return out;
}

bool SegmentedBbs::operator==(const SegmentedBbs& other) const {
  return config_ == other.config_ &&
         segment_capacity_ == other.segment_capacity_ &&
         segments_ == other.segments_;
}

}  // namespace bbsmine
