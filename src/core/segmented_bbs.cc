#include "core/segmented_bbs.h"

#include "storage/transaction_db.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/thread_pool.h"

namespace bbsmine {

namespace {

constexpr char kManifestMagic[8] = {'B', 'B', 'S', 'S', 'E', 'G', '0', '1'};

std::string SegmentPath(const std::string& prefix, size_t idx) {
  return prefix + ".seg" + std::to_string(idx);
}

}  // namespace

Result<SegmentedBbs> SegmentedBbs::Create(const BbsConfig& config,
                                          uint64_t segment_capacity) {
  if (segment_capacity == 0) {
    return Status::InvalidArgument("segment_capacity must be positive");
  }
  // Validate the config by building the first segment.
  Result<BbsIndex> first = BbsIndex::Create(config);
  if (!first.ok()) return first.status();
  SegmentedBbs out(config, segment_capacity);
  out.segments_.push_back(std::move(first).value());
  return out;
}

Status SegmentedBbs::AppendSegment() {
  Result<BbsIndex> segment = BbsIndex::Create(config_);
  if (!segment.ok()) return segment.status();
  segments_.push_back(std::move(segment).value());
  return Status::Ok();
}

Status SegmentedBbs::Insert(const Itemset& items) {
  if (segments_.back().num_transactions() >= segment_capacity_) {
    BBSMINE_RETURN_IF_ERROR(AppendSegment());
  }
  segments_.back().Insert(items);
  ++num_transactions_;
  return Status::Ok();
}

Status SegmentedBbs::InsertAll(const TransactionDatabase& db) {
  return InsertAll(db, 0, db.size());
}

Status SegmentedBbs::InsertAll(const TransactionDatabase& db, size_t first,
                               size_t count) {
  if (first > db.size() || count > db.size() - first) {
    return Status::OutOfRange("InsertAll range past end of database");
  }
  for (size_t t = first; t < first + count; ++t) {
    BBSMINE_RETURN_IF_ERROR(Insert(db.At(t).items));
  }
  return Status::Ok();
}

size_t SegmentedBbs::CountItemSet(const Itemset& items, IoStats* io,
                                  size_t num_threads,
                                  obs::Tracer* tracer) const {
  obs::TraceSpan span(tracer, obs::kTraceKernel, "segbbs.count");
  span.AddArg("items", items.size());
  span.AddArg("segments", segments_.size());
  // Each worker charges a private per-segment IoStats; the merge below runs
  // in segment order, so both the count and the I/O totals are identical to
  // the serial pass regardless of the thread schedule.
  std::vector<size_t> counts(segments_.size(), 0);
  std::vector<IoStats> segment_io(io != nullptr ? segments_.size() : 0);
  ParallelFor(num_threads, segments_.size(), [&](size_t idx) {
    obs::TraceSpan segment_span(tracer, obs::kTraceKernel, "segbbs.segment");
    segment_span.AddArg("segment", idx);
    counts[idx] = segments_[idx].CountItemSet(
        items, nullptr, io != nullptr ? &segment_io[idx] : nullptr);
  });
  size_t total = 0;
  for (size_t count : counts) total += count;
  if (io != nullptr) {
    for (const IoStats& per_segment : segment_io) *io += per_segment;
  }
  return total;
}

std::vector<size_t> SegmentedBbs::CountPerSegment(const Itemset& items,
                                                  size_t num_threads) const {
  std::vector<size_t> counts(segments_.size(), 0);
  ParallelFor(num_threads, segments_.size(), [&](size_t idx) {
    counts[idx] = segments_[idx].CountItemSet(items);
  });
  return counts;
}

uint64_t SegmentedBbs::ExactItemCount(ItemId item) const {
  uint64_t total = 0;
  for (const BbsIndex& segment : segments_) {
    total += segment.ExactItemCount(item);
  }
  return total;
}

uint64_t SegmentedBbs::SerializedBytes() const {
  uint64_t total = 0;
  for (const BbsIndex& segment : segments_) {
    total += segment.SerializedBytes();
  }
  return total;
}

Status SegmentedBbs::Save(const std::string& prefix) const {
  // Manifest: magic, segment capacity, segment count, crc over the numeric
  // payload.
  std::string payload;
  for (uint64_t v : {segment_capacity_, static_cast<uint64_t>(segments_.size()),
                     static_cast<uint64_t>(num_transactions_)}) {
    for (int i = 0; i < 8; ++i) payload.push_back(static_cast<char>(v >> (8 * i)));
  }
  std::string file;
  file.append(kManifestMagic, sizeof(kManifestMagic));
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) file.push_back(static_cast<char>(crc >> (8 * i)));
  file += payload;

  BBSMINE_RETURN_IF_ERROR(WriteBinaryFile(prefix + ".manifest", file));

  for (size_t idx = 0; idx < segments_.size(); ++idx) {
    BBSMINE_RETURN_IF_ERROR(segments_[idx].Save(SegmentPath(prefix, idx)));
  }
  return Status::Ok();
}

Result<SegmentedBbs> SegmentedBbs::Load(const std::string& prefix) {
  Result<std::string> contents = ReadBinaryFile(prefix + ".manifest");
  if (!contents.ok()) return contents.status();
  const std::string& file = *contents;
  if (file.size() != sizeof(kManifestMagic) + 4 + 24 ||
      file.compare(0, sizeof(kManifestMagic), kManifestMagic,
                   sizeof(kManifestMagic)) != 0) {
    return Status::Corruption("bad manifest " + prefix);
  }
  size_t pos = sizeof(kManifestMagic);
  uint32_t expected_crc = 0;
  for (int i = 0; i < 4; ++i) {
    expected_crc |=
        static_cast<uint32_t>(static_cast<uint8_t>(file[pos + i])) << (8 * i);
  }
  pos += 4;
  if (Crc32(std::string_view(file.data() + pos, file.size() - pos)) !=
      expected_crc) {
    return Status::Corruption("manifest checksum mismatch " + prefix);
  }
  uint64_t values[3] = {0, 0, 0};
  for (uint64_t& v : values) {
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(file[pos + i]))
           << (8 * i);
    }
    pos += 8;
  }

  uint64_t capacity = values[0];
  uint64_t segment_count = values[1];
  uint64_t num_transactions = values[2];
  if (capacity == 0 || segment_count == 0) {
    return Status::Corruption("degenerate manifest " + prefix);
  }

  std::vector<BbsIndex> segments;
  segments.reserve(segment_count);
  uint64_t loaded_transactions = 0;
  for (size_t idx = 0; idx < segment_count; ++idx) {
    Result<BbsIndex> segment = BbsIndex::Load(SegmentPath(prefix, idx));
    if (!segment.ok()) return segment.status();
    loaded_transactions += segment->num_transactions();
    segments.push_back(std::move(segment).value());
  }
  if (loaded_transactions != num_transactions) {
    return Status::Corruption("segment transaction counts disagree with "
                              "manifest for " + prefix);
  }

  SegmentedBbs out(segments.front().config(), capacity);
  out.segments_ = std::move(segments);
  out.num_transactions_ = loaded_transactions;
  return out;
}

bool SegmentedBbs::operator==(const SegmentedBbs& other) const {
  return config_ == other.config_ &&
         segment_capacity_ == other.segment_capacity_ &&
         segments_ == other.segments_;
}

}  // namespace bbsmine
