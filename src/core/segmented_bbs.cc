#include "core/segmented_bbs.h"

#include <cstdio>
#include <memory>

#include "util/crc32.h"

namespace bbsmine {

namespace {

constexpr char kManifestMagic[8] = {'B', 'B', 'S', 'S', 'E', 'G', '0', '1'};

std::string SegmentPath(const std::string& prefix, size_t idx) {
  return prefix + ".seg" + std::to_string(idx);
}

}  // namespace

Result<SegmentedBbs> SegmentedBbs::Create(const BbsConfig& config,
                                          uint64_t segment_capacity) {
  if (segment_capacity == 0) {
    return Status::InvalidArgument("segment_capacity must be positive");
  }
  // Validate the config by building the first segment.
  Result<BbsIndex> first = BbsIndex::Create(config);
  if (!first.ok()) return first.status();
  SegmentedBbs out(config, segment_capacity);
  out.segments_.push_back(std::move(first).value());
  return out;
}

Status SegmentedBbs::AppendSegment() {
  Result<BbsIndex> segment = BbsIndex::Create(config_);
  if (!segment.ok()) return segment.status();
  segments_.push_back(std::move(segment).value());
  return Status::Ok();
}

void SegmentedBbs::Insert(const Itemset& items) {
  if (segments_.back().num_transactions() >= segment_capacity_) {
    // Create cannot fail here: the config was validated at construction.
    Status status = AppendSegment();
    (void)status;
  }
  segments_.back().Insert(items);
  ++num_transactions_;
}

size_t SegmentedBbs::CountItemSet(const Itemset& items, IoStats* io) const {
  size_t total = 0;
  for (const BbsIndex& segment : segments_) {
    total += segment.CountItemSet(items, nullptr, io);
  }
  return total;
}

std::vector<size_t> SegmentedBbs::CountPerSegment(const Itemset& items) const {
  std::vector<size_t> counts;
  counts.reserve(segments_.size());
  for (const BbsIndex& segment : segments_) {
    counts.push_back(segment.CountItemSet(items));
  }
  return counts;
}

uint64_t SegmentedBbs::ExactItemCount(ItemId item) const {
  uint64_t total = 0;
  for (const BbsIndex& segment : segments_) {
    total += segment.ExactItemCount(item);
  }
  return total;
}

uint64_t SegmentedBbs::SerializedBytes() const {
  uint64_t total = 0;
  for (const BbsIndex& segment : segments_) {
    total += segment.SerializedBytes();
  }
  return total;
}

Status SegmentedBbs::Save(const std::string& prefix) const {
  // Manifest: magic, segment capacity, segment count, crc over the numeric
  // payload.
  std::string payload;
  for (uint64_t v : {segment_capacity_, static_cast<uint64_t>(segments_.size()),
                     static_cast<uint64_t>(num_transactions_)}) {
    for (int i = 0; i < 8; ++i) payload.push_back(static_cast<char>(v >> (8 * i)));
  }
  std::string file;
  file.append(kManifestMagic, sizeof(kManifestMagic));
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) file.push_back(static_cast<char>(crc >> (8 * i)));
  file += payload;

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(
      std::fopen((prefix + ".manifest").c_str(), "wb"), &std::fclose);
  if (fp == nullptr) {
    return Status::IoError("cannot open for writing: " + prefix + ".manifest");
  }
  if (std::fwrite(file.data(), 1, file.size(), fp.get()) != file.size()) {
    return Status::IoError("short write: " + prefix + ".manifest");
  }

  for (size_t idx = 0; idx < segments_.size(); ++idx) {
    BBSMINE_RETURN_IF_ERROR(segments_[idx].Save(SegmentPath(prefix, idx)));
  }
  return Status::Ok();
}

Result<SegmentedBbs> SegmentedBbs::Load(const std::string& prefix) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(
      std::fopen((prefix + ".manifest").c_str(), "rb"), &std::fclose);
  if (fp == nullptr) {
    return Status::IoError("cannot open for reading: " + prefix +
                           ".manifest");
  }
  std::string file;
  char buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), fp.get())) > 0) {
    file.append(buf, n);
  }
  if (file.size() != sizeof(kManifestMagic) + 4 + 24 ||
      file.compare(0, sizeof(kManifestMagic), kManifestMagic,
                   sizeof(kManifestMagic)) != 0) {
    return Status::Corruption("bad manifest " + prefix);
  }
  size_t pos = sizeof(kManifestMagic);
  uint32_t expected_crc = 0;
  for (int i = 0; i < 4; ++i) {
    expected_crc |=
        static_cast<uint32_t>(static_cast<uint8_t>(file[pos + i])) << (8 * i);
  }
  pos += 4;
  if (Crc32(std::string_view(file.data() + pos, file.size() - pos)) !=
      expected_crc) {
    return Status::Corruption("manifest checksum mismatch " + prefix);
  }
  uint64_t values[3] = {0, 0, 0};
  for (uint64_t& v : values) {
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(file[pos + i]))
           << (8 * i);
    }
    pos += 8;
  }

  uint64_t capacity = values[0];
  uint64_t segment_count = values[1];
  uint64_t num_transactions = values[2];
  if (capacity == 0 || segment_count == 0) {
    return Status::Corruption("degenerate manifest " + prefix);
  }

  std::vector<BbsIndex> segments;
  segments.reserve(segment_count);
  uint64_t loaded_transactions = 0;
  for (size_t idx = 0; idx < segment_count; ++idx) {
    Result<BbsIndex> segment = BbsIndex::Load(SegmentPath(prefix, idx));
    if (!segment.ok()) return segment.status();
    loaded_transactions += segment->num_transactions();
    segments.push_back(std::move(segment).value());
  }
  if (loaded_transactions != num_transactions) {
    return Status::Corruption("segment transaction counts disagree with "
                              "manifest for " + prefix);
  }

  SegmentedBbs out(segments.front().config(), capacity);
  out.segments_ = std::move(segments);
  out.num_transactions_ = loaded_transactions;
  return out;
}

bool SegmentedBbs::operator==(const SegmentedBbs& other) const {
  return config_ == other.config_ &&
         segment_capacity_ == other.segment_capacity_ &&
         segments_ == other.segments_;
}

}  // namespace bbsmine
