#include "core/rules.h"

#include <algorithm>
#include <map>

namespace bbsmine {

namespace {

/// Set difference of canonical itemsets: z \ h.
Itemset Minus(const Itemset& z, const Itemset& h) {
  Itemset out;
  out.reserve(z.size() - h.size());
  std::set_difference(z.begin(), z.end(), h.begin(), h.end(),
                      std::back_inserter(out));
  return out;
}

/// Joins equal-length sorted itemsets sharing their first k-1 items
/// (candidate consequents one level up). Confidence filtering in TryEmit
/// makes an Apriori-style subset prune unnecessary for correctness.
std::vector<Itemset> JoinConsequents(const std::vector<Itemset>& level) {
  std::vector<Itemset> out;
  for (size_t block_start = 0; block_start < level.size();) {
    size_t block_end = block_start + 1;
    while (block_end < level.size() &&
           std::equal(level[block_start].begin(),
                      level[block_start].end() - 1,
                      level[block_end].begin(), level[block_end].end() - 1)) {
      ++block_end;
    }
    for (size_t i = block_start; i < block_end; ++i) {
      for (size_t j = i + 1; j < block_end; ++j) {
        Itemset candidate = level[i];
        candidate.push_back(level[j].back());
        out.push_back(std::move(candidate));
      }
    }
    block_start = block_end;
  }
  return out;
}

class RuleGenerator {
 public:
  RuleGenerator(const std::map<Itemset, uint64_t>& support,
                size_t num_transactions, double min_confidence,
                std::vector<AssociationRule>* out)
      : support_(support),
        num_transactions_(num_transactions),
        min_confidence_(min_confidence),
        out_(out) {}

  /// Generates all rules from frequent itemset `z` (|z| >= 2).
  void FromItemset(const Itemset& z, uint64_t z_support) {
    // Level 1: single-item consequents.
    std::vector<Itemset> consequents;
    for (ItemId item : z) {
      Itemset h = {item};
      if (TryEmit(z, z_support, h)) consequents.push_back(std::move(h));
    }
    // Grow consequents level-wise: if z \ h => h lacks confidence, then so
    // does z \ h' => h' for any h' containing h (its antecedent is a
    // subset, hence at least as supported).
    while (consequents.size() > 1 &&
           consequents.front().size() + 1 < z.size()) {
      std::sort(consequents.begin(), consequents.end());
      std::vector<Itemset> next = JoinConsequents(consequents);
      std::vector<Itemset> kept;
      for (Itemset& h : next) {
        if (TryEmit(z, z_support, h)) kept.push_back(std::move(h));
      }
      consequents = std::move(kept);
    }
  }

 private:
  /// Emits antecedent => h if it reaches the confidence bar; returns
  /// whether it passed.
  bool TryEmit(const Itemset& z, uint64_t z_support, const Itemset& h) {
    Itemset antecedent = Minus(z, h);
    if (antecedent.empty()) return false;
    auto it = support_.find(antecedent);
    if (it == support_.end() || it->second == 0) return false;
    double confidence = static_cast<double>(z_support) /
                        static_cast<double>(it->second);
    if (confidence < min_confidence_) return false;

    AssociationRule rule;
    rule.antecedent = std::move(antecedent);
    rule.consequent = h;
    rule.support = z_support;
    rule.confidence = confidence;
    auto consequent_support = support_.find(h);
    if (consequent_support != support_.end() &&
        consequent_support->second > 0 && num_transactions_ > 0) {
      double base = static_cast<double>(consequent_support->second) /
                    static_cast<double>(num_transactions_);
      rule.lift = confidence / base;
    }
    out_->push_back(std::move(rule));
    return true;
  }

  const std::map<Itemset, uint64_t>& support_;
  size_t num_transactions_;
  double min_confidence_;
  std::vector<AssociationRule>* out_;
};

}  // namespace

std::vector<AssociationRule> GenerateRules(const MiningResult& result,
                                           size_t num_transactions,
                                           const RuleConfig& config) {
  std::map<Itemset, uint64_t> support;
  for (const Pattern& p : result.patterns) {
    support.emplace(p.items, p.support);
  }

  std::vector<AssociationRule> rules;
  RuleGenerator generator(support, num_transactions, config.min_confidence,
                          &rules);
  for (const Pattern& p : result.patterns) {
    if (p.items.size() >= 2) generator.FromItemset(p.items, p.support);
  }

  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.support != b.support) return a.support > b.support;
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  if (config.max_rules != 0 && rules.size() > config.max_rules) {
    rules.resize(config.max_rules);
  }
  return rules;
}

}  // namespace bbsmine
