// Common types shared by the BBS miners and the baseline algorithms.

#ifndef BBSMINE_CORE_MINING_TYPES_H_
#define BBSMINE_CORE_MINING_TYPES_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/transaction.h"
#include "util/iomodel.h"

namespace bbsmine {

/// The four filter-and-refine schemes of Section 3.3.
enum class Algorithm : uint8_t {
  kSFS = 0,  ///< SingleFilter + SequentialScan
  kSFP = 1,  ///< SingleFilter + Probe (integrated)
  kDFS = 2,  ///< DualFilter + SequentialScan
  kDFP = 3,  ///< DualFilter + Probe (integrated)
};

/// Human-readable name of an algorithm ("SFS", ...).
const char* AlgorithmName(Algorithm algorithm);

/// How confident the miner is in a reported support value.
enum class SupportKind : uint8_t {
  /// The support is the exact occurrence count.
  kExact = 0,
  /// The support is a BBS estimate; the pattern is guaranteed frequent
  /// (DualFilter flag 2: the Lemma 5 lower bound met the threshold) but the
  /// reported value may overestimate.
  kGuaranteedEstimate = 1,
};

/// One mined frequent pattern.
struct Pattern {
  Itemset items;         // canonical
  uint64_t support = 0;  // exact count, or estimate per `kind`
  SupportKind kind = SupportKind::kExact;

  bool operator==(const Pattern& other) const {
    return items == other.items && support == other.support;
  }
};

/// Tuning knobs for a mining run.
struct MineConfig {
  /// Minimum support as a fraction of the number of transactions
  /// (paper default: 0.3%).
  double min_support = 0.003;

  /// Which filter-and-refine scheme to run.
  Algorithm algorithm = Algorithm::kDFP;

  /// Memory budget in bytes; 0 = unlimited (everything memory-resident).
  /// When the BBS does not fit, the adaptive three-phase variant
  /// (Section 3.1, "Adaptive Filtering") folds it into a MemBBS.
  uint64_t memory_budget_bytes = 0;

  /// Block size for I/O accounting.
  uint32_t block_size = 4096;

  /// Device cost parameters. Used (a) to convert counters into simulated
  /// seconds in reports and (b) by the adaptive miner to choose between
  /// probe and sequential-scan refinement when memory is scarce.
  IoCostParams io_params;

  /// Ablation (not in the paper): after a successful probe, shrink the
  /// candidate's transaction vector to the exactly-matching transactions,
  /// tightening all downstream estimates. Off by default for fidelity.
  bool tighten_after_probe = false;

  /// Walk the singletons in ascending-estimate order (narrow enumeration
  /// tree) rather than the paper's item order. The candidate set is
  /// identical either way; only traversal cost differs. On by default;
  /// exposed for the ordering ablation bench.
  bool rare_first_order = true;

  /// Worker threads for the filter fan-out, postprocessing and refinement.
  /// 1 (default) runs fully serial; 0 means one thread per hardware thread.
  /// The mined pattern set — patterns, supports, and emission order — is
  /// identical for every value (per-subtree outputs are merged in
  /// deterministic root order); only wall time and buffer-pool hit/miss
  /// interleaving change.
  uint32_t num_threads = 1;
};

/// Observability counters of one mining run.
struct MineStats {
  uint64_t candidates = 0;        ///< itemsets that passed the filter
  uint64_t false_drops = 0;       ///< candidates rejected during refinement
  uint64_t certified = 0;         ///< DualFilter flag>0 (refinement skipped)
  uint64_t probed_transactions = 0;  ///< records fetched by Probe
  uint64_t extension_tests = 0;   ///< CountItemSet / slice-AND evaluations
  uint64_t db_scans = 0;          ///< full database passes
  double filter_seconds = 0;
  double refine_seconds = 0;
  double total_seconds = 0;
  IoStats io;

  /// Accumulates another run's (or worker's) counters into this one.
  MineStats& operator+=(const MineStats& other) {
    candidates += other.candidates;
    false_drops += other.false_drops;
    certified += other.certified;
    probed_transactions += other.probed_transactions;
    extension_tests += other.extension_tests;
    db_scans += other.db_scans;
    filter_seconds += other.filter_seconds;
    refine_seconds += other.refine_seconds;
    total_seconds += other.total_seconds;
    io += other.io;
    return *this;
  }
};

/// The outcome of a mining run: the frequent patterns plus statistics.
struct MiningResult {
  std::vector<Pattern> patterns;
  MineStats stats;

  /// False drop ratio FDR = F_fd / F (paper Section 4): the number of false
  /// drops seen during refinement over the number of true frequent patterns.
  double FalseDropRatio() const {
    if (patterns.empty()) {
      return stats.false_drops == 0 ? 0.0 : HUGE_VAL;
    }
    return static_cast<double>(stats.false_drops) /
           static_cast<double>(patterns.size());
  }

  /// Sorts patterns lexicographically by itemset, for stable comparisons.
  void SortPatterns();

  /// Looks up the support of `items`; returns nullptr when absent.
  /// Requires SortPatterns() to have been called.
  const Pattern* Find(const Itemset& items) const;
};

/// Converts a fractional minimum support into the absolute occurrence
/// threshold tau for a database of `num_transactions` records: the smallest
/// integer count that qualifies as frequent (count >= tau), never below 1.
uint64_t AbsoluteThreshold(double min_support, size_t num_transactions);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_MINING_TYPES_H_
