// Common types shared by the BBS miners and the baseline algorithms.

#ifndef BBSMINE_CORE_MINING_TYPES_H_
#define BBSMINE_CORE_MINING_TYPES_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/transaction.h"
#include "util/iomodel.h"

namespace bbsmine {

namespace obs {
class Tracer;
}  // namespace obs

/// The four filter-and-refine schemes of Section 3.3.
enum class Algorithm : uint8_t {
  kSFS = 0,  ///< SingleFilter + SequentialScan
  kSFP = 1,  ///< SingleFilter + Probe (integrated)
  kDFS = 2,  ///< DualFilter + SequentialScan
  kDFP = 3,  ///< DualFilter + Probe (integrated)
};

/// Human-readable name of an algorithm ("SFS", ...).
const char* AlgorithmName(Algorithm algorithm);

/// How confident the miner is in a reported support value.
enum class SupportKind : uint8_t {
  /// The support is the exact occurrence count.
  kExact = 0,
  /// The support is a BBS estimate; the pattern is guaranteed frequent
  /// (DualFilter flag 2: the Lemma 5 lower bound met the threshold) but the
  /// reported value may overestimate.
  kGuaranteedEstimate = 1,
};

/// One mined frequent pattern.
struct Pattern {
  Itemset items;         // canonical
  uint64_t support = 0;  // exact count, or estimate per `kind`
  SupportKind kind = SupportKind::kExact;

  bool operator==(const Pattern& other) const {
    return items == other.items && support == other.support;
  }
};

/// Tuning knobs for a mining run.
struct MineConfig {
  /// Minimum support as a fraction of the number of transactions
  /// (paper default: 0.3%).
  double min_support = 0.003;

  /// Which filter-and-refine scheme to run.
  Algorithm algorithm = Algorithm::kDFP;

  /// Memory budget in bytes; 0 = unlimited (everything memory-resident).
  /// When the BBS does not fit, the adaptive three-phase variant
  /// (Section 3.1, "Adaptive Filtering") folds it into a MemBBS.
  uint64_t memory_budget_bytes = 0;

  /// Block size for I/O accounting.
  uint32_t block_size = 4096;

  /// Device cost parameters. Used (a) to convert counters into simulated
  /// seconds in reports and (b) by the adaptive miner to choose between
  /// probe and sequential-scan refinement when memory is scarce.
  IoCostParams io_params;

  /// Ablation (not in the paper): after a successful probe, shrink the
  /// candidate's transaction vector to the exactly-matching transactions,
  /// tightening all downstream estimates. Off by default for fidelity.
  bool tighten_after_probe = false;

  /// Walk the singletons in ascending-estimate order (narrow enumeration
  /// tree) rather than the paper's item order. The candidate set is
  /// identical either way; only traversal cost differs. On by default;
  /// exposed for the ordering ablation bench.
  bool rare_first_order = true;

  /// Worker threads for the filter fan-out, postprocessing and refinement.
  /// 1 (default) runs fully serial; 0 means one thread per hardware thread.
  /// The mined pattern set — patterns, supports, and emission order — is
  /// identical for every value (per-subtree outputs are merged in
  /// deterministic root order); only wall time and buffer-pool hit/miss
  /// interleaving change.
  uint32_t num_threads = 1;

  /// Optional span tracer (obs/trace.h). When set, the run records phase /
  /// filter-subtree / refinement-batch / probe spans into it. Tracing is
  /// passive: the mined patterns and all counters are bit-identical with
  /// or without a tracer attached. Not owned.
  obs::Tracer* tracer = nullptr;
};

/// Observability counters of one mining run.
///
/// Instances double as the engine's per-worker metric shards: every
/// parallel fan-out gives each root subtree / candidate / chunk its own
/// MineStats and merges them with += in a fixed order, so all counters and
/// histograms are deterministic at any thread count (see obs/metrics.h for
/// the shard/registry relationship).
///
/// Timing semantics under parallelism:
///  * *_wall_seconds — elapsed time of the phase, measured once on the
///    coordinating thread. Worker shards leave these at zero, so the
///    additive merge is correct for shards and still accumulates across
///    sequential runs.
///  * *_cpu_seconds — summed busy time of all workers in that phase. At
///    num_threads == 1, cpu == wall (up to timer noise).
/// For the integrated SFP/DFP schemes refinement happens inside the filter
/// walk, so filter_wall_seconds covers the combined window,
/// refine_wall_seconds is 0, and refine_cpu_seconds carries the summed
/// probe time.
struct MineStats {
  uint64_t candidates = 0;        ///< itemsets that passed the filter
  uint64_t false_drops = 0;       ///< candidates rejected during refinement
  uint64_t certified = 0;         ///< DualFilter flag>0 (refinement skipped)
  uint64_t probed_transactions = 0;  ///< records fetched by Probe
  uint64_t extension_tests = 0;   ///< CountItemSet / slice-AND evaluations
  uint64_t db_scans = 0;          ///< full database passes
  uint64_t cache_hits = 0;        ///< buffer-pool hits during probes
  uint64_t cache_misses = 0;      ///< buffer-pool misses during probes
  uint64_t max_queue_depth = 0;   ///< gauge: deepest thread-pool backlog seen
  double filter_wall_seconds = 0;
  double filter_cpu_seconds = 0;
  double refine_wall_seconds = 0;
  double refine_cpu_seconds = 0;
  double total_seconds = 0;       ///< wall time of the whole run
  obs::DepthHistogram candidates_by_depth;   ///< by itemset size
  obs::DepthHistogram pruned_by_depth;       ///< extensions estimated < tau
  obs::DepthHistogram false_drops_by_depth;  ///< by itemset size
  IoStats io;

  /// Accumulates another run's (or worker shard's) counters into this one.
  /// Additive for counters, histograms and times; maximum for the queue-
  /// depth gauge (a watermark across shards).
  MineStats& operator+=(const MineStats& other) {
    candidates += other.candidates;
    false_drops += other.false_drops;
    certified += other.certified;
    probed_transactions += other.probed_transactions;
    extension_tests += other.extension_tests;
    db_scans += other.db_scans;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    max_queue_depth = std::max(max_queue_depth, other.max_queue_depth);
    filter_wall_seconds += other.filter_wall_seconds;
    filter_cpu_seconds += other.filter_cpu_seconds;
    refine_wall_seconds += other.refine_wall_seconds;
    refine_cpu_seconds += other.refine_cpu_seconds;
    total_seconds += other.total_seconds;
    candidates_by_depth += other.candidates_by_depth;
    pruned_by_depth += other.pruned_by_depth;
    false_drops_by_depth += other.false_drops_by_depth;
    io += other.io;
    return *this;
  }

  /// Full equality, timings included (run-report round-trip tests).
  bool operator==(const MineStats& other) const {
    return CountersEqual(other) && max_queue_depth == other.max_queue_depth &&
           filter_wall_seconds == other.filter_wall_seconds &&
           filter_cpu_seconds == other.filter_cpu_seconds &&
           refine_wall_seconds == other.refine_wall_seconds &&
           refine_cpu_seconds == other.refine_cpu_seconds &&
           total_seconds == other.total_seconds;
  }

  /// Equality of the schedule-independent part: every counter, histogram
  /// and I/O charge, but not timings or the queue-depth watermark. This is
  /// what must match between --threads=1 and --threads=N runs.
  bool CountersEqual(const MineStats& other) const {
    return candidates == other.candidates &&
           false_drops == other.false_drops && certified == other.certified &&
           probed_transactions == other.probed_transactions &&
           extension_tests == other.extension_tests &&
           db_scans == other.db_scans && cache_hits == other.cache_hits &&
           cache_misses == other.cache_misses &&
           candidates_by_depth == other.candidates_by_depth &&
           pruned_by_depth == other.pruned_by_depth &&
           false_drops_by_depth == other.false_drops_by_depth &&
           io == other.io;
  }
};

/// The outcome of a mining run: the frequent patterns plus statistics.
struct MiningResult {
  std::vector<Pattern> patterns;
  MineStats stats;

  /// False drop ratio FDR = F_fd / F (paper Section 4): the number of false
  /// drops seen during refinement over the number of true frequent patterns.
  double FalseDropRatio() const {
    if (patterns.empty()) {
      return stats.false_drops == 0 ? 0.0 : HUGE_VAL;
    }
    return static_cast<double>(stats.false_drops) /
           static_cast<double>(patterns.size());
  }

  /// Sorts patterns lexicographically by itemset, for stable comparisons.
  void SortPatterns();

  /// Looks up the support of `items`; returns nullptr when absent.
  /// Requires SortPatterns() to have been called.
  const Pattern* Find(const Itemset& items) const;
};

/// Converts a fractional minimum support into the absolute occurrence
/// threshold tau for a database of `num_transactions` records: the smallest
/// integer count that qualifies as frequent (count >= tau), never below 1.
uint64_t AbsoluteThreshold(double min_support, size_t num_transactions);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_MINING_TYPES_H_
