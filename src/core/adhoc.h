// Ad-hoc queries over the BBS (paper Sections 3.4 and 4.9).
//
// Because the BBS stores every transaction — not just the frequent patterns —
// it can answer queries that Apriori's output and the FP-tree cannot:
//   * "what is the count of this (possibly non-frequent) pattern?"
//   * "what is the count of pattern I among transactions satisfying a
//     constraint?" — implemented by ANDing one extra *constraint slice*
//     (bit t set iff transaction t satisfies the predicate) into the
//     CountItemSet result.
//
// Both run as a single CountItemSet followed by a probe of the matching
// transactions for the exact answer.

#ifndef BBSMINE_CORE_ADHOC_H_
#define BBSMINE_CORE_ADHOC_H_

#include <cstdint>
#include <functional>

#include "core/bbs_index.h"
#include "storage/transaction_db.h"
#include "util/bitvector.h"

namespace bbsmine {

/// The answer to an ad-hoc count query.
struct AdhocQueryResult {
  uint64_t estimate = 0;   ///< BBS estimate (upper bound on the exact count)
  uint64_t exact = 0;      ///< exact count after probing
  uint64_t probed_transactions = 0;
  IoStats io;
};

/// Builds a constraint slice: bit t is set iff `predicate` holds for the
/// t-th transaction of `db`. Building the slice scans the database once
/// (charged to `io` when non-null); in a production deployment constraint
/// slices for common predicates would be maintained incrementally like the
/// BBS itself.
BitVector MakeConstraintSlice(
    const TransactionDatabase& db,
    const std::function<bool(const Transaction&)>& predicate,
    IoStats* io = nullptr);

/// Exact count of `items` in `db`, optionally restricted to the
/// transactions selected by `constraint` (pass nullptr for none). Uses
/// CountItemSet for the filter and probes only the matching transactions.
AdhocQueryResult CountPatternExact(const TransactionDatabase& db,
                                   const BbsIndex& bbs, const Itemset& items,
                                   const BitVector* constraint = nullptr);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_ADHOC_H_
