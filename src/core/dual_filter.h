// Algorithm DualFilter (paper Figures 3 and 4).
//
// DualFilter partitions the candidates into two groups: patterns *certain*
// to be frequent (no refinement needed) and patterns whose validity is
// uncertain. The certainty comes from the exact occurrence counts of all
// 1-itemsets maintained alongside the BBS, combined with:
//
//   Lemma 5:      if actCount(I1) == estCount(I1) then
//                 actCount(I1 u I2) >= estCount(I1 u I2)
//                                      - (estCount(I2) - actCount(I2))
//   Corollary 1:  if additionally actCount(I2) == estCount(I2) then
//                 actCount(I1 u I2) == estCount(I1 u I2)
//
// Routine CheckCount classifies each accepted extension:
//   flag -1: not frequent (exact count below threshold)
//   flag  0: frequent per the estimate, validity uncertain
//   flag  1: frequent with 100% guarantee, count is exact
//   flag  2: frequent with 100% guarantee, count is an estimate

#ifndef BBSMINE_CORE_DUAL_FILTER_H_
#define BBSMINE_CORE_DUAL_FILTER_H_

#include <cstdint>
#include <vector>

#include "core/filter_engine.h"
#include "core/mining_types.h"
#include "core/single_filter.h"

namespace bbsmine {

/// Classification outcome of CheckCount (paper Figure 3).
struct CheckCountResult {
  int flag = 0;        ///< -1, 0, 1 or 2 (see file comment)
  uint64_t count = 0;  ///< exact count if flag is 1 or -1, estimate otherwise
};

/// Knowledge about the parent itemset I2 carried through the recursion.
struct ParentState {
  int flag = 1;        ///< parent's CheckCount flag (root: 1, "empty set")
  uint64_t count = 0;  ///< parent's count (meaning depends on flag)
  uint64_t est = 0;    ///< parent's estimated count estCount(I2)
  bool empty = true;   ///< true at the root (I2 == empty itemset)
};

/// Classifies the extension of parent I2 by singleton I1 = {item}.
///
/// `item_exact` / `item_est` are actCount({item}) / estCount({item});
/// `union_est` is estCount(I1 u I2) (already known to be >= tau by the
/// caller's filter test, except at the root where no pre-test happens).
CheckCountResult CheckCount(uint64_t item_exact, uint64_t item_est,
                            const ParentState& parent, uint64_t union_est,
                            uint64_t tau);

/// A candidate emitted by DualFilter, with its certainty classification.
struct DualCandidate {
  Itemset items;       // canonical
  uint64_t est = 0;    // estCount(items)
  uint64_t count = 0;  // exact count if flag == 1, estimate otherwise
  int flag = 0;        // 0 (uncertain), 1 or 2 (certain)
};

/// Output of DualFilter: `certain` needs no refinement; `uncertain` does.
struct DualFilterOutput {
  std::vector<DualCandidate> certain;    // flag 1 or 2
  std::vector<DualCandidate> uncertain;  // flag 0
};

/// Runs DualFilter on a prepared engine. The engine's index must track
/// 1-itemset counts. Updates stats->{candidates, certified, extension_tests}.
///
/// With `num_threads` > 1 the root-level subtrees of the walk run in
/// parallel (0 = one thread per hardware thread); both output sequences are
/// identical to the serial walk.
DualFilterOutput RunDualFilter(const FilterEngine& engine, MineStats* stats,
                               size_t num_threads = 1);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_DUAL_FILTER_H_
