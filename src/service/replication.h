// WAL shipping between a primary bbsmined and a warm follower.
//
// The design reuses every durability invariant the single-node daemon
// already proves instead of inventing a parallel replication format:
//
//  * The unit of shipping is the WAL record — the exact `[len|crc|payload]`
//    bytes the primary fsynced (service/wal.h). The follower re-verifies
//    the CRC, appends the batch to its *own* WAL via the normal
//    DurabilityManager path, and applies it to its in-memory index. A
//    follower is therefore just a daemon whose INSERTs arrive over the
//    stream instead of the INSERT verb, and promotion is literally PR 5
//    recovery: everything acked to the primary's WAL that was shipped is
//    replayable on the follower.
//
//  * Positions are absolute transaction numbers (the WAL's base + offsets),
//    so the follower's resume watermark is simply its applied transaction
//    count — no separate replication log or offset file.
//
// Wire protocol (rides the length-prefixed JSON frames of service/wire.h;
// docs/SERVICE.md documents it under WALSTREAM):
//
//   follower -> primary   {"verb": "WALSTREAM", "watermark": W}
//   primary  -> follower  {"ok": true, "verb": "WALSTREAM",
//                          "watermark": W, "end_txn": E}      (handshake ok)
//   primary  -> follower  {"ok": true, "verb": "WALSTREAM",
//                          "kind": "records", "start_txn": S,
//                          "transactions": T, "records": R,
//                          "data": "<hex of raw WAL record bytes>"}
//   primary  -> follower  {"ok": true, "verb": "WALSTREAM",
//                          "kind": "heartbeat", "end_txn": E}
//   follower -> primary   {"ack": N}      (after N txns are durably applied)
//
// Loss modes: in async mode an acked INSERT the primary had not yet
// shipped dies with the primary; the report's lag_records bounds that
// tail. With --repl-ack (semi-sync) the INSERT response is withheld until
// the follower acks the record, so acked writes survive primary loss; an
// ack timeout degrades that one response ("replicated": false) rather
// than failing the write — the MySQL semi-sync compromise.
//
// Thread model: ReplicationSource::Serve runs on the server's connection
// thread (the WALSTREAM connection is consumed by the stream until either
// side closes). ReplicationFollower owns one background thread that
// connects, tails, applies, and reconnects forever until Stop().

#ifndef BBSMINE_SERVICE_REPLICATION_H_
#define BBSMINE_SERVICE_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "service/durability.h"
#include "storage/transaction.h"
#include "util/status.h"

namespace bbsmine::service {

/// Lowercase hex of raw bytes (the records-frame "data" member).
std::string HexEncode(std::string_view bytes);

/// Inverse of HexEncode; InvalidArgument on odd length or non-hex digits.
Result<std::string> HexDecode(const std::string& hex);

struct ReplicationSourceOptions {
  /// Raw record bytes per records frame. Hex encoding doubles this on the
  /// wire, so it must stay under half the frame cap (wire.h).
  uint64_t chunk_bytes = 4u << 20;
  /// Idle poll: how often the source re-scans the WAL for new records and
  /// emits a heartbeat when there are none.
  int poll_interval_ms = 20;
};

/// Primary side: serves WALSTREAM connections and tracks the follower's
/// durable watermark (which also feeds the checkpoint-truncate replication
/// floor, durability.h).
class ReplicationSource {
 public:
  /// `durability` must outlive the source. `applied_txns` reports the
  /// primary's applied transaction count (for lag accounting).
  ReplicationSource(DurabilityManager* durability,
                    std::function<uint64_t()> applied_txns,
                    const ReplicationSourceOptions& options);

  /// Serves one follower connection until `stop`, disconnect, or error.
  /// `handshake` is the already-read WALSTREAM request. Runs on the
  /// caller's (connection) thread.
  void Serve(const obs::JsonValue& handshake, int fd,
             const std::atomic<bool>& stop);

  /// Semi-sync: blocks until the follower has acked through `txn` or
  /// `timeout_ms` elapses. Returns whether the ack arrived.
  bool WaitForAck(uint64_t txn, int timeout_ms);

  /// Bumped by the semi-sync insert path when WaitForAck times out.
  void NoteAckTimeout() {
    ack_timeouts_.fetch_add(1, std::memory_order_relaxed);
  }

  struct Stats {
    uint64_t followers = 0;  ///< currently-attached stream connections
    uint64_t last_streamed_txn = 0;
    uint64_t last_acked_txn = 0;
    uint64_t records_shipped = 0;
    uint64_t bytes_shipped = 0;
    uint64_t lag_bytes = 0;  ///< WAL record bytes not yet streamed
    uint64_t ack_timeouts = 0;
  };
  Stats stats() const;

  uint64_t applied_txns() const { return applied_txns_(); }

 private:
  void NoteAck(uint64_t txn);
  /// Drains any {"ack": N} frames waiting on the connection, blocking at
  /// most `timeout_ms` for the first. False when the peer is gone.
  bool DrainAcks(int fd, int timeout_ms);

  DurabilityManager* durability_;
  std::function<uint64_t()> applied_txns_;
  ReplicationSourceOptions options_;

  std::mutex ack_mu_;
  std::condition_variable ack_cv_;
  std::atomic<uint64_t> followers_{0};
  std::atomic<uint64_t> last_streamed_txn_{0};
  std::atomic<uint64_t> last_acked_txn_{0};
  std::atomic<uint64_t> records_shipped_{0};
  std::atomic<uint64_t> bytes_shipped_{0};
  std::atomic<uint64_t> lag_bytes_{0};
  std::atomic<uint64_t> ack_timeouts_{0};
};

struct ReplicationFollowerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2'000;
  /// Read timeout per frame poll; also bounds Stop() latency.
  int io_timeout_ms = 250;
  int reconnect_backoff_ms = 500;
};

/// Follower side: a background thread that tails the primary's WAL stream
/// and applies each record through the caller's apply hook.
class ReplicationFollower {
 public:
  /// The follower's durable applied transaction count: the resume
  /// watermark sent at each (re)connect. Must reflect only fully-applied
  /// records — it is read between applies on the follower thread.
  using WatermarkFn = std::function<uint64_t()>;
  /// Applies decoded record batches in order, durably (WAL + index + db
  /// under the service write mutex). A failure drops the connection; the
  /// records are re-fetched from the watermark on reconnect.
  using ApplyFn = std::function<Status(
      const std::vector<std::vector<Itemset>>&)>;

  ReplicationFollower(const ReplicationFollowerOptions& options,
                      WatermarkFn watermark, ApplyFn apply);
  ~ReplicationFollower();

  ReplicationFollower(const ReplicationFollower&) = delete;
  ReplicationFollower& operator=(const ReplicationFollower&) = delete;

  void Start();
  /// Stops the tail loop and joins the thread. Idempotent; called on
  /// shutdown and on promotion (a primary must not keep tailing anyone).
  void Stop();

  struct Stats {
    bool running = false;
    bool connected = false;
    uint64_t primary_end_txn = 0;  ///< from the last heartbeat/handshake
    uint64_t records_applied = 0;
    uint64_t crc_rejects = 0;
    uint64_t reconnects = 0;
  };
  Stats stats() const;

  std::string primary_endpoint() const {
    return options_.host + ":" + std::to_string(options_.port);
  }

 private:
  void Run();
  /// One connection lifetime: connect, handshake, tail. The status says
  /// why it ended (NotFound = peer closed; anything else is logged).
  Status RunOnce();

  ReplicationFollowerOptions options_;
  WatermarkFn watermark_;
  ApplyFn apply_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> primary_end_txn_{0};
  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> crc_rejects_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
};

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_REPLICATION_H_
