#include "service/metrics.h"

namespace bbsmine::service {

ServiceMetrics::ServiceMetrics() {
  requests_total = registry_.AddCounter("counters.requests_total");
  requests_ping = registry_.AddCounter("counters.requests_ping");
  requests_count = registry_.AddCounter("counters.requests_count");
  requests_insert = registry_.AddCounter("counters.requests_insert");
  requests_mine = registry_.AddCounter("counters.requests_mine");
  requests_stats = registry_.AddCounter("counters.requests_stats");
  requests_checkpoint = registry_.AddCounter("counters.requests_checkpoint");
  errors = registry_.AddCounter("counters.errors");
  rejected_backpressure =
      registry_.AddCounter("counters.rejected_backpressure");
  batches = registry_.AddCounter("counters.batches");
  batch_fused_requests =
      registry_.AddCounter("counters.batch_fused_requests");
  shared_seed_queries = registry_.AddCounter("counters.shared_seed_queries");
  inserted_transactions =
      registry_.AddCounter("counters.inserted_transactions");
  compacted_segments = registry_.AddCounter("counters.compacted_segments");
  queue_depth = registry_.AddGauge("gauges.queue_depth");
  batch_size_peak = registry_.AddGauge("gauges.batch_size_peak");
  active_connections = registry_.AddGauge("gauges.active_connections");
  latency_ping = registry_.AddHistogram("latency_us.ping");
  latency_count = registry_.AddHistogram("latency_us.count");
  latency_insert = registry_.AddHistogram("latency_us.insert");
  latency_mine = registry_.AddHistogram("latency_us.mine");
  latency_stats = registry_.AddHistogram("latency_us.stats");
  latency_checkpoint = registry_.AddHistogram("latency_us.checkpoint");
  batch_size_hist = registry_.AddHistogram("batch.size");
}

void ServiceMetrics::Inc(size_t slot, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.Inc(slot, n);
}

void ServiceMetrics::GaugeMax(size_t slot, uint64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.GaugeMax(slot, v);
}

void ServiceMetrics::ObserveLog2(size_t slot, uint64_t magnitude) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.Observe(slot, obs::Log2Bucket(magnitude));
}

uint64_t ServiceMetrics::counter(size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  return registry_.counter(slot);
}

std::vector<obs::MetricSample> ServiceMetrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registry_.Snapshot();
}

obs::JsonValue BuildServiceReport(const ServiceReportContext& ctx,
                                  const ServiceMetrics& metrics) {
  using obs::JsonValue;
  JsonValue report = JsonValue::Object();
  report.Set("schema_version", JsonValue::Int(kServiceReportSchemaVersion));
  report.Set("kind", JsonValue::String("bbsmined_service"));

  JsonValue service = JsonValue::Object();
  service.Set("uptime_seconds", JsonValue::Double(ctx.uptime_seconds));
  service.Set("epoch", JsonValue::Uint(ctx.epoch));
  service.Set("transactions", JsonValue::Uint(ctx.transactions));
  service.Set("segments", JsonValue::Uint(ctx.segments));
  service.Set("segment_capacity", JsonValue::Uint(ctx.segment_capacity));
  service.Set("snapshot_publications",
              JsonValue::Uint(ctx.snapshot_publications));
  service.Set("snapshot_seals", JsonValue::Uint(ctx.snapshot_seals));
  service.Set("draining", JsonValue::Bool(ctx.draining));
  service.Set("mine_enabled", JsonValue::Bool(ctx.mine_enabled));
  service.Set("index_backend", JsonValue::String(ctx.index_backend));
  service.Set("resident_slice_bytes",
              JsonValue::Uint(ctx.resident_slice_bytes));
  service.Set("minor_faults", JsonValue::Uint(ctx.minor_faults));
  service.Set("major_faults", JsonValue::Uint(ctx.major_faults));
  report.Set("service", std::move(service));

  JsonValue compaction = JsonValue::Object();
  compaction.Set("enabled", JsonValue::Bool(ctx.compaction_enabled));
  if (ctx.compaction_enabled) {
    compaction.Set("cold_epochs", JsonValue::Uint(ctx.compact_cold_epochs));
    compaction.Set("fold_bits", JsonValue::Uint(ctx.compact_fold_bits));
  }
  compaction.Set("compacted_segments",
                 JsonValue::Uint(ctx.compacted_segments));
  report.Set("compaction", std::move(compaction));

  JsonValue durability = JsonValue::Object();
  durability.Set("enabled", JsonValue::Bool(ctx.durable));
  if (ctx.durable) {
    durability.Set("fsync_policy", JsonValue::String(ctx.fsync_policy));
    durability.Set("checkpoint_every", JsonValue::Uint(ctx.checkpoint_every));
    durability.Set("wal_appends", JsonValue::Uint(ctx.wal_appends));
    durability.Set("wal_bytes", JsonValue::Uint(ctx.wal_bytes));
    durability.Set("wal_fsyncs", JsonValue::Uint(ctx.wal_fsyncs));
    durability.Set("checkpoints", JsonValue::Uint(ctx.checkpoints));
    durability.Set("wal_txns_since_checkpoint",
                   JsonValue::Uint(ctx.wal_txns_since_checkpoint));
    durability.Set("checkpoint_loaded", JsonValue::Bool(ctx.checkpoint_loaded));
    durability.Set("recovered_records", JsonValue::Uint(ctx.recovered_records));
    durability.Set("torn_tail_bytes", JsonValue::Uint(ctx.torn_tail_bytes));
    durability.Set("recovery_seconds", JsonValue::Double(ctx.recovery_seconds));
  }
  report.Set("durability", std::move(durability));

  report.Set("metrics", obs::MetricsSectionJson(metrics.Snapshot()));
  return report;
}

}  // namespace bbsmine::service
