#include "service/metrics.h"

#include <algorithm>
#include <utility>

namespace bbsmine::service {

size_t ServiceMetrics::AddCounter(std::string name) {
  size_t slot = num_scalars_++;
  metas_.push_back(Meta{std::move(name), obs::MetricKind::kCounter, slot});
  return slot;
}

size_t ServiceMetrics::AddGauge(std::string name) {
  size_t slot = num_scalars_++;
  metas_.push_back(Meta{std::move(name), obs::MetricKind::kGauge, slot});
  return slot;
}

size_t ServiceMetrics::AddHistogram(std::string name) {
  size_t slot = num_hists_++;
  metas_.push_back(Meta{std::move(name), obs::MetricKind::kHistogram, slot});
  return slot;
}

ServiceMetrics::ServiceMetrics(const WindowOptions& windows)
    : window_options_(windows),
      next_rotation_us_(std::max<uint64_t>(1, windows.interval_us)),
      ring_(std::max<size_t>(1, windows.slots)) {
  window_options_.interval_us = std::max<uint64_t>(1, windows.interval_us);
  window_options_.slots = ring_.size();

  requests_total = AddCounter("counters.requests_total");
  requests_ping = AddCounter("counters.requests_ping");
  requests_count = AddCounter("counters.requests_count");
  requests_insert = AddCounter("counters.requests_insert");
  requests_mine = AddCounter("counters.requests_mine");
  requests_stats = AddCounter("counters.requests_stats");
  requests_checkpoint = AddCounter("counters.requests_checkpoint");
  requests_dump = AddCounter("counters.requests_dump");
  requests_shardinfo = AddCounter("counters.requests_shardinfo");
  requests_promote = AddCounter("counters.requests_promote");
  errors = AddCounter("counters.errors");
  rejected_backpressure = AddCounter("counters.rejected_backpressure");
  batches = AddCounter("counters.batches");
  batch_fused_requests = AddCounter("counters.batch_fused_requests");
  shared_seed_queries = AddCounter("counters.shared_seed_queries");
  inserted_transactions = AddCounter("counters.inserted_transactions");
  compacted_segments = AddCounter("counters.compacted_segments");
  slow_queries = AddCounter("counters.slow_queries");
  traced_requests = AddCounter("counters.traced_requests");
  pruned_shard_queries = AddCounter("cluster.pruned_shard_queries");
  hedged_requests = AddCounter("cluster.hedged_requests");
  degraded_responses = AddCounter("cluster.degraded_responses");
  shard_errors = AddCounter("cluster.shard_errors");
  failovers = AddCounter("cluster.failovers");
  queue_depth = AddGauge("gauges.queue_depth");
  batch_size_peak = AddGauge("gauges.batch_size_peak");
  active_connections = AddGauge("gauges.active_connections");
  latency_ping = AddHistogram("latency_us.ping");
  latency_count = AddHistogram("latency_us.count");
  latency_insert = AddHistogram("latency_us.insert");
  latency_mine = AddHistogram("latency_us.mine");
  latency_stats = AddHistogram("latency_us.stats");
  latency_checkpoint = AddHistogram("latency_us.checkpoint");
  latency_dump = AddHistogram("latency_us.dump");
  latency_shardinfo = AddHistogram("latency_us.shardinfo");
  latency_promote = AddHistogram("latency_us.promote");
  batch_size_hist = AddHistogram("batch.size");
  fanout_latency = AddHistogram("cluster.fanout_us");

  scalars_ = std::make_unique<std::atomic<uint64_t>[]>(num_scalars_);
  hist_ = std::make_unique<std::atomic<uint64_t>[]>(num_hists_ * kBuckets);
  for (size_t i = 0; i < num_scalars_; ++i) {
    scalars_[i].store(0, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < num_hists_ * kBuckets; ++i) {
    hist_[i].store(0, std::memory_order_relaxed);
  }
}

ServiceMetrics::Cumulative ServiceMetrics::CaptureCumulative() const {
  Cumulative cum;
  cum.scalars.resize(num_scalars_);
  cum.hist.resize(num_hists_ * kBuckets);
  for (size_t i = 0; i < num_scalars_; ++i) {
    cum.scalars[i] = scalars_[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < num_hists_ * kBuckets; ++i) {
    cum.hist[i] = hist_[i].load(std::memory_order_relaxed);
  }
  return cum;
}

std::vector<obs::MetricSample> ServiceMetrics::Snapshot() const {
  Cumulative cum = CaptureCumulative();
  std::vector<obs::MetricSample> samples;
  samples.reserve(metas_.size());
  for (const Meta& meta : metas_) {
    obs::MetricSample sample;
    sample.name = meta.name;
    sample.kind = meta.kind;
    if (meta.kind == obs::MetricKind::kHistogram) {
      sample.buckets.resize(kBuckets, 0);
      uint64_t total = 0;
      for (size_t b = 0; b < kBuckets; ++b) {
        sample.buckets[b] = cum.hist[meta.slot * kBuckets + b];
        total += sample.buckets[b];
      }
      sample.value = total;
    } else {
      sample.value = cum.scalars[meta.slot];
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

void ServiceMetrics::MaybeRotateWindows(uint64_t now_rel_us) const {
  uint64_t next = next_rotation_us_.load(std::memory_order_relaxed);
  if (now_rel_us < next) return;
  // A rotation is due. One thread wins the lock and writes the catch-up
  // snapshots; losers simply proceed — their rotation is already being
  // taken care of.
  if (!window_mu_.try_lock()) return;
  std::lock_guard<std::mutex> lock(window_mu_, std::adopt_lock);
  next = next_rotation_us_.load(std::memory_order_relaxed);
  if (now_rel_us < next) return;
  const uint64_t interval = window_options_.interval_us;
  // After a long idle gap most due snapshots would be overwritten inside
  // this same catch-up; skip straight to the last ring-full of them.
  uint64_t due = (now_rel_us - next) / interval + 1;
  if (due > ring_.size()) {
    next += (due - ring_.size()) * interval;
  }
  while (next <= now_rel_us) {
    ring_[ring_next_] = WindowSnap{next, true, CaptureCumulative()};
    ring_next_ = (ring_next_ + 1) % ring_.size();
    next += interval;
  }
  next_rotation_us_.store(next, std::memory_order_relaxed);
}

obs::JsonValue ServiceMetrics::WindowSectionJson(uint64_t now_rel_us) const {
  using obs::JsonValue;
  std::lock_guard<std::mutex> lock(window_mu_);

  // Baseline: the newest snapshot at least one lookback old. A daemon
  // younger than the lookback (or one whose windows have not rotated yet)
  // falls back to service start — all-zero cumulative values.
  const uint64_t horizon =
      now_rel_us >= kWindowLookbackUs ? now_rel_us - kWindowLookbackUs : 0;
  const WindowSnap* baseline = nullptr;
  for (const WindowSnap& snap : ring_) {
    if (!snap.valid || snap.end_us > horizon) continue;
    if (baseline == nullptr || snap.end_us > baseline->end_us) {
      baseline = &snap;
    }
  }
  const uint64_t baseline_end = baseline != nullptr ? baseline->end_us : 0;
  Cumulative current = CaptureCumulative();

  // Deltas, in catalog order. Watermark gauges are lifetime-only.
  std::vector<obs::MetricSample> deltas;
  deltas.reserve(metas_.size());
  for (const Meta& meta : metas_) {
    if (meta.kind == obs::MetricKind::kGauge) continue;
    obs::MetricSample sample;
    sample.name = meta.name;
    sample.kind = meta.kind;
    if (meta.kind == obs::MetricKind::kHistogram) {
      sample.buckets.resize(kBuckets, 0);
      uint64_t total = 0;
      for (size_t b = 0; b < kBuckets; ++b) {
        size_t idx = meta.slot * kBuckets + b;
        uint64_t base = baseline != nullptr ? baseline->cum.hist[idx] : 0;
        uint64_t cur = current.hist[idx];
        sample.buckets[b] = cur >= base ? cur - base : 0;
        total += sample.buckets[b];
      }
      sample.value = total;
    } else {
      uint64_t base =
          baseline != nullptr ? baseline->cum.scalars[meta.slot] : 0;
      uint64_t cur = current.scalars[meta.slot];
      sample.value = cur >= base ? cur - base : 0;
    }
    deltas.push_back(std::move(sample));
  }

  JsonValue last = obs::MetricsSectionJson(deltas);
  // Annotate each histogram with recent percentiles from its delta
  // buckets. An empty window renders p50/p95/p99 as 0.
  for (const obs::MetricSample& sample : deltas) {
    if (sample.kind != obs::MetricKind::kHistogram) continue;
    size_t dot = sample.name.find('.');
    JsonValue* section = last.MutableAt(sample.name.substr(0, dot));
    if (section == nullptr) continue;
    JsonValue* hist = section->MutableAt(sample.name.substr(dot + 1));
    if (hist == nullptr) continue;
    hist->Set("p50", JsonValue::Double(
                         obs::PercentileFromLog2Buckets(sample.buckets, 0.50)));
    hist->Set("p95", JsonValue::Double(
                         obs::PercentileFromLog2Buckets(sample.buckets, 0.95)));
    hist->Set("p99", JsonValue::Double(
                         obs::PercentileFromLog2Buckets(sample.buckets, 0.99)));
  }

  JsonValue window = JsonValue::Object();
  window.Set("interval_seconds",
             JsonValue::Double(static_cast<double>(window_options_.interval_us) /
                               1e6));
  window.Set("slots", JsonValue::Uint(window_options_.slots));
  window.Set("lookback_seconds",
             JsonValue::Double(static_cast<double>(kWindowLookbackUs) / 1e6));
  window.Set("covered_seconds",
             JsonValue::Double(
                 static_cast<double>(now_rel_us - baseline_end) / 1e6));
  window.Set("last_60s", std::move(last));
  return window;
}

obs::JsonValue BuildServiceReport(const ServiceReportContext& ctx,
                                  const ServiceMetrics& metrics) {
  using obs::JsonValue;
  JsonValue report = JsonValue::Object();
  report.Set("schema_version", JsonValue::Int(kServiceReportSchemaVersion));
  report.Set("kind", JsonValue::String(ctx.kind));

  JsonValue service = JsonValue::Object();
  service.Set("uptime_seconds", JsonValue::Double(ctx.uptime_seconds));
  service.Set("epoch", JsonValue::Uint(ctx.epoch));
  service.Set("transactions", JsonValue::Uint(ctx.transactions));
  service.Set("segments", JsonValue::Uint(ctx.segments));
  service.Set("segment_capacity", JsonValue::Uint(ctx.segment_capacity));
  service.Set("snapshot_publications",
              JsonValue::Uint(ctx.snapshot_publications));
  service.Set("snapshot_seals", JsonValue::Uint(ctx.snapshot_seals));
  service.Set("draining", JsonValue::Bool(ctx.draining));
  service.Set("mine_enabled", JsonValue::Bool(ctx.mine_enabled));
  service.Set("index_backend", JsonValue::String(ctx.index_backend));
  service.Set("resident_slice_bytes",
              JsonValue::Uint(ctx.resident_slice_bytes));
  service.Set("minor_faults", JsonValue::Uint(ctx.minor_faults));
  service.Set("major_faults", JsonValue::Uint(ctx.major_faults));
  report.Set("service", std::move(service));

  JsonValue compaction = JsonValue::Object();
  compaction.Set("enabled", JsonValue::Bool(ctx.compaction_enabled));
  if (ctx.compaction_enabled) {
    compaction.Set("cold_epochs", JsonValue::Uint(ctx.compact_cold_epochs));
    compaction.Set("fold_bits", JsonValue::Uint(ctx.compact_fold_bits));
  }
  compaction.Set("compacted_segments",
                 JsonValue::Uint(ctx.compacted_segments));
  report.Set("compaction", std::move(compaction));

  JsonValue durability = JsonValue::Object();
  durability.Set("enabled", JsonValue::Bool(ctx.durable));
  if (ctx.durable) {
    durability.Set("fsync_policy", JsonValue::String(ctx.fsync_policy));
    durability.Set("checkpoint_every", JsonValue::Uint(ctx.checkpoint_every));
    durability.Set("wal_appends", JsonValue::Uint(ctx.wal_appends));
    durability.Set("wal_bytes", JsonValue::Uint(ctx.wal_bytes));
    durability.Set("wal_fsyncs", JsonValue::Uint(ctx.wal_fsyncs));
    durability.Set("checkpoints", JsonValue::Uint(ctx.checkpoints));
    durability.Set("wal_txns_since_checkpoint",
                   JsonValue::Uint(ctx.wal_txns_since_checkpoint));
    durability.Set("wal_truncations_deferred",
                   JsonValue::Uint(ctx.wal_truncations_deferred));
    durability.Set("checkpoint_loaded", JsonValue::Bool(ctx.checkpoint_loaded));
    durability.Set("recovered_records", JsonValue::Uint(ctx.recovered_records));
    durability.Set("torn_tail_bytes", JsonValue::Uint(ctx.torn_tail_bytes));
    durability.Set("recovery_seconds", JsonValue::Double(ctx.recovery_seconds));
  }
  report.Set("durability", std::move(durability));

  if (ctx.replication.kind() == JsonValue::Kind::kObject) {
    report.Set("replication", ctx.replication);
  } else {
    JsonValue replication = JsonValue::Object();
    replication.Set("enabled", JsonValue::Bool(false));
    report.Set("replication", std::move(replication));
  }

  JsonValue metrics_json = obs::MetricsSectionJson(metrics.Snapshot());
  // Live values next to the watermark gauges: what the queue and the
  // accept loop look like right now, not their historical peaks.
  if (JsonValue* gauges = metrics_json.MutableAt("gauges")) {
    gauges->Set("queue_depth_now", JsonValue::Uint(ctx.pending_requests));
    gauges->Set("active_connections_now",
                JsonValue::Uint(ctx.open_connections));
  }
  // The fleet view, rendered identically by daemon and router so one
  // scraper covers both: a standalone daemon reports itself as a one-shard
  // fleet; the router reports real totals plus per-shard detail.
  JsonValue cluster = JsonValue::Object();
  cluster.Set("role", JsonValue::String(ctx.cluster_role));
  cluster.Set("shards_total", JsonValue::Uint(ctx.shards_total));
  cluster.Set("shards_up", JsonValue::Uint(ctx.shards_up));
  cluster.Set("pruned_shard_queries",
              JsonValue::Uint(metrics.counter(metrics.pruned_shard_queries)));
  cluster.Set("hedged_requests",
              JsonValue::Uint(metrics.counter(metrics.hedged_requests)));
  cluster.Set("degraded_responses",
              JsonValue::Uint(metrics.counter(metrics.degraded_responses)));
  cluster.Set("shard_errors",
              JsonValue::Uint(metrics.counter(metrics.shard_errors)));
  cluster.Set("failovers", JsonValue::Uint(metrics.counter(metrics.failovers)));
  // The fan-out latency histogram also lives under metrics.cluster; the
  // copy here keeps the fleet section self-contained for dashboards.
  if (const JsonValue* cluster_metrics = metrics_json.MutableAt("cluster");
      cluster_metrics != nullptr && cluster_metrics->Has("fanout_us")) {
    cluster.Set("fanout_us", cluster_metrics->at("fanout_us"));
  }
  if (ctx.cluster_shards.kind() == JsonValue::Kind::kArray) {
    cluster.Set("shards", ctx.cluster_shards);
  }
  report.Set("metrics", std::move(metrics_json));
  report.Set("cluster", std::move(cluster));

  report.Set("window", metrics.WindowSectionJson(ctx.window_now_us));
  return report;
}

}  // namespace bbsmine::service
