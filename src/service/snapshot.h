// Snapshot isolation over a segmented BBS: immutable read snapshots that
// let inserts run concurrently with counting queries.
//
// SegmentedBbs's own contract is "concurrent queries fine, Insert requires
// exclusive access" — good enough for batch mining, fatal for a service
// that must answer COUNT while absorbing INSERT traffic. The structural
// observation that fixes it: sealed segments are already immutable, and
// only the open tail segment ever mutates. So the manager keeps the
// mutable tail private to the writer and *publishes* an epoch-stamped,
// fully immutable segment list after every mutation:
//
//   * sealed segments are shared by reference across epochs (never copied);
//   * the tail is copied once per publication (copy-on-publish), so the
//     published list references only frozen objects;
//   * publication swaps one shared_ptr under a leaf mutex whose critical
//     sections are pointer copies only — all insert work (hashing, slice
//     updates, the tail copy itself) happens outside it, so readers are
//     never blocked behind index mutation. Readers acquire the current
//     list with one pointer copy and hold it for as long as they like
//     (Snapshot is a value type).
//
// (Why a leaf mutex and not std::atomic<std::shared_ptr>: libstdc++'s
// _Sp_atomic guards its pointer with an embedded lock bit released with
// memory_order_relaxed on the reader side, which ThreadSanitizer flags as
// a formal data race. A plain mutex with pointer-copy critical sections
// has identical blocking behavior — _Sp_atomic spins too — and is fully
// TSan-understood; the CI thread-sanitizer job runs the stress tests.)
//
// Reclamation is epoch-based in the refcounting sense: a superseded list
// (and the tail copy only it references) is destroyed exactly when the
// last snapshot holding it is released. There is no grace-period machinery
// to tune and no reader registration — inserts never block readers behind
// their work, which is the property the service-layer stress test pins
// under TSan.
//
// Consistency guarantee: every snapshot is a *prefix* of the insert
// sequence (insert i is visible iff all inserts < i are), and epochs and
// transaction counts are monotone across acquisitions. Counts computed
// against one snapshot are bit-identical to counting a SegmentedBbs built
// from that prefix.
//
// Costs: one tail copy per publication. Single inserts publish every time
// (freshest reads, O(tail bytes) copy); InsertAll publishes once per batch,
// which is what the daemon's INSERT verb uses.

#ifndef BBSMINE_SERVICE_SNAPSHOT_H_
#define BBSMINE_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/segmented_bbs.h"
#include "storage/transaction_db.h"

namespace bbsmine::service {

/// When and how far to fold cold sealed segments (the compact tier).
/// Disabled unless both fields are non-zero.
struct CompactionPolicy {
  /// A sealed segment is cold once this many publication epochs have
  /// passed since it was sealed (sealed segments never mutate again, so
  /// age-since-seal is the access-independent coldness signal).
  uint64_t cold_epochs = 0;
  /// Fold target: the cold segment is rewritten with this many slices
  /// (counts stay upper bounds — Section 3.1's MemBBS fold).
  uint32_t fold_bits = 0;

  bool enabled() const { return cold_epochs != 0 && fold_bits != 0; }
};

/// An immutable view of the index at one publication epoch. Cheap to copy
/// (one shared_ptr); safe to query from any thread; keeps the segments it
/// references alive for its own lifetime.
class Snapshot {
 public:
  Snapshot() = default;

  bool valid() const { return state_ != nullptr; }

  /// Publication epoch: strictly increasing across publications.
  uint64_t epoch() const { return state_->epoch; }

  /// Transactions visible in this snapshot (a prefix of the insert
  /// sequence).
  size_t num_transactions() const { return state_->num_transactions; }

  size_t num_segments() const { return state_->segments.size(); }
  const BbsIndex& segment(size_t idx) const { return *state_->segments[idx]; }
  const BbsConfig& config() const { return state_->config; }

  /// Heap bytes pinned by the visible segments' slice data (0 per mmap'd
  /// segment — their pages are file-backed and reclaimable).
  size_t ApproxResidentBytes() const;

  /// Estimated number of visible transactions containing `items`,
  /// accumulated segment by segment exactly like SegmentedBbs::CountItemSet
  /// (never an underestimate). `num_threads` > 1 fans the per-segment
  /// counts over a ParallelFor with a deterministic merge.
  size_t CountItemSet(const Itemset& items, IoStats* io = nullptr,
                      size_t num_threads = 1) const;

 private:
  friend class SnapshotManager;

  struct State {
    uint64_t epoch = 0;
    size_t num_transactions = 0;
    BbsConfig config;
    // Sealed segments plus one frozen tail copy; all strictly immutable.
    // Empty tails are not published, so segments may be empty at epoch 0.
    std::vector<std::shared_ptr<const BbsIndex>> segments;
  };

  explicit Snapshot(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// The writer side: owns the mutable tail, serializes writers internally,
/// and publishes immutable snapshots. Readers call Acquire() from any
/// thread at any time.
class SnapshotManager {
 public:
  /// An empty index; each segment holds up to `segment_capacity`
  /// transactions.
  static Result<SnapshotManager> Create(const BbsConfig& config,
                                        uint64_t segment_capacity);

  /// Adopts the contents of an existing segmented index (e.g. one loaded
  /// from disk). Sealed segments are shared, the open tail is copied.
  static Result<SnapshotManager> FromIndex(const SegmentedBbs& index);

  /// Wraps a monolithic BbsIndex as one sealed segment; new inserts go to
  /// a fresh tail holding up to `segment_capacity` transactions each.
  static Result<SnapshotManager> FromIndex(const BbsIndex& index,
                                           uint64_t segment_capacity);

  SnapshotManager(SnapshotManager&&) = default;
  SnapshotManager& operator=(SnapshotManager&&) = default;

  /// One shared_ptr copy under the publication leaf mutex; never waits on
  /// insert work.
  Snapshot Acquire() const { return Snapshot(published_->Load()); }

  /// Appends one transaction and publishes the new epoch. Serialized with
  /// other writers; never blocks or waits for readers.
  Status Insert(const Itemset& items);

  /// Appends every transaction of `db` (or the `count` starting at
  /// `first`) and publishes once at the end of the batch.
  Status InsertAll(const TransactionDatabase& db);
  Status InsertAll(const TransactionDatabase& db, size_t first, size_t count);

  /// Writer-side totals (also visible through Acquire()).
  uint64_t epoch() const { return Acquire().epoch(); }
  size_t num_transactions() const { return Acquire().num_transactions(); }

  /// Number of publications so far == number of retired tail copies + 1.
  /// Exposed as a service metric (snapshot.publishes).
  uint64_t publications() const;

  /// Number of tail seals (segments frozen because they reached capacity).
  uint64_t seals() const;

  /// Fold compaction of cold sealed segments. Every sealed segment that
  /// (a) is not yet folded, (b) was sealed at least `policy.cold_epochs`
  /// publications ago, and (c) is wider than `policy.fold_bits` is replaced
  /// with its Fold(policy.fold_bits) image and the result is published as a
  /// new epoch. Snapshots acquired earlier keep the unfolded originals
  /// alive until released; counts from folded segments remain upper bounds.
  /// Returns the number of segments compacted (0 when the policy is
  /// disabled or nothing is cold).
  size_t CompactColdSegments(const CompactionPolicy& policy);

  /// Total segments compacted by CompactColdSegments so far.
  uint64_t compactions() const;

  uint64_t segment_capacity() const { return segment_capacity_; }

 private:
  SnapshotManager(const BbsConfig& config, uint64_t segment_capacity);

  /// Seals the tail if full, opening a fresh one. Caller holds mu_.
  Status MaybeSealLocked();

  /// Publishes the current sealed list + a frozen copy of the tail.
  /// Caller holds mu_.
  void PublishLocked();

  BbsConfig config_;
  uint64_t segment_capacity_ = 0;

  // Writer state; guarded by mu_. Readers never touch it.
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::vector<std::shared_ptr<const BbsIndex>> sealed_;
  // sealed_epoch_[i]: the epoch current when sealed_[i] froze (parallel to
  // sealed_). Drives the CompactionPolicy coldness test.
  std::vector<uint64_t> sealed_epoch_;
  std::unique_ptr<BbsIndex> tail_;  // writer-private mutable tail
  size_t num_transactions_ = 0;
  uint64_t epoch_ = 0;
  uint64_t publications_ = 0;
  uint64_t seals_ = 0;
  uint64_t compactions_ = 0;

  // The published snapshot state: a shared_ptr slot behind a leaf mutex
  // whose critical sections are pointer copies only (see the file comment
  // for why this beats std::atomic<std::shared_ptr> here). unique_ptr-
  // wrapped so the manager stays movable.
  struct PublishedState {
    std::shared_ptr<const Snapshot::State> Load() const {
      std::lock_guard<std::mutex> lock(mu);
      return state;
    }
    void Store(std::shared_ptr<const Snapshot::State> next) {
      std::shared_ptr<const Snapshot::State> retired;
      {
        std::lock_guard<std::mutex> lock(mu);
        retired.swap(state);
        state = std::move(next);
      }
      // `retired` (possibly the last reference to a superseded tail copy)
      // is released here, outside the leaf mutex.
    }
    mutable std::mutex mu;
    std::shared_ptr<const Snapshot::State> state;
  };
  std::unique_ptr<PublishedState> published_ =
      std::make_unique<PublishedState>();
};

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_SNAPSHOT_H_
