// The bbsmined query service: verb handling and the TCP front-end.
//
// Split in two so the protocol logic is testable without sockets:
//
//  * BbsService — the transport-free request handler. One instance owns
//    the snapshot manager's write side, the batch scheduler, the optional
//    transaction database (MINE / exact workloads), and the service
//    metrics. Handle() maps one request document to one response document
//    and is safe to call from any number of threads.
//
//  * SocketServer — accept loop plus one thread per connection, speaking
//    length-prefixed JSON frames (service/wire.h). Stop() performs the
//    graceful drain the daemon's SIGTERM handler relies on: stop
//    accepting, let in-flight requests finish, join every connection.
//
// Concurrency model:
//   COUNT  — admitted into the CountScheduler; snapshot-isolated reads;
//            never blocked by inserts.
//   INSERT — serialized by the service write mutex (index + db must move
//            together); publishes a new epoch; never blocks COUNT.
//   MINE   — heavyweight: runs a full mining pass over the database under
//            the write mutex (it serializes with INSERT, not with COUNT).
//   STATS / PING — read-only; touch only the metrics and snapshot locks.

#ifndef BBSMINE_SERVICE_SERVER_H_
#define BBSMINE_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "service/durability.h"
#include "service/flight_recorder.h"
#include "service/metrics.h"
#include "service/scheduler.h"
#include "service/slow_log.h"
#include "service/snapshot.h"
#include "storage/transaction_db.h"
#include "util/socket.h"

namespace bbsmine::service {

class ReplicationSource;
class ReplicationFollower;

/// Replication role of a daemon (docs/CLUSTER.md "Replication & failover").
enum class ServiceRole {
  kStandalone,  ///< no replication configured
  kPrimary,     ///< serves WALSTREAM; accepts INSERT
  kFollower,    ///< tails a primary; INSERT is rejected until promotion
};

const char* ServiceRoleName(ServiceRole role);

struct ServiceOptions {
  SchedulerOptions scheduler;
  /// Patterns returned by MINE when the request has no "top".
  size_t mine_top = 10;
  /// Minimum support used by MINE when the request has no "minsup".
  double default_min_support = 0.003;
  /// When non-null, INSERT is write-ahead logged and the CHECKPOINT verb
  /// is live (see service/durability.h). Owned by the caller; must outlive
  /// the service. Null = the pre-durability in-memory behavior.
  DurabilityManager* durability = nullptr;
  /// The SliceSource backend the daemon loaded its index with (the load
  /// itself happens in the daemon main; this is echoed in STATS).
  IndexBackend index_backend = IndexBackend::kResident;
  /// When enabled, every INSERT batch ends with a CompactColdSegments pass
  /// (service/snapshot.h): sealed segments untouched for `cold_epochs`
  /// publications are folded to `fold_bits` slices. Counts from folded
  /// segments remain upper bounds but are no longer bit-identical to the
  /// full-width index, so this defaults off.
  CompactionPolicy compaction;

  // --- Observability plane (docs/OBSERVABILITY.md). All four hooks are
  // caller-owned, optional, and passive when unset: a null tracer /
  // slow_log / flight_recorder costs one branch per request. ---

  /// Span sink for sampled requests; must outlive the service.
  obs::Tracer* tracer = nullptr;
  /// Sample 1-in-N requests into the tracer (0 = trace nothing). A sampled
  /// request emits a request span plus, for COUNT, queue-wait / batch /
  /// per-segment spans correlated by its trace_id.
  uint64_t trace_sample = 0;
  /// Slow-query sink; requests with latency >= slow_query_us append one
  /// JSON line. Must outlive the service.
  SlowQueryLog* slow_log = nullptr;
  /// Threshold for the slow-query log, microseconds. 0 logs every request
  /// (useful in CI to force a record).
  uint64_t slow_query_us = 0;
  /// Per-connection flight recorder (DUMP verb / shutdown dump). Must
  /// outlive the service.
  FlightRecorder* flight_recorder = nullptr;
  /// Shape of the windowed-metrics ring behind the STATS "window" section.
  ServiceMetrics::WindowOptions stats_windows;

  // --- Replication (docs/CLUSTER.md). All caller-owned and optional. ---

  /// Non-null on a primary serving followers: WALSTREAM connections are
  /// handed to it, and STATS gains the source's replication section.
  ReplicationSource* replication = nullptr;
  /// Non-null on a follower: reported in STATS and stopped on promotion.
  ReplicationFollower* follower = nullptr;
  /// Semi-sync (--repl-ack): INSERT responses wait for the follower's ack
  /// up to `repl_ack_timeout_ms`, then degrade to "replicated": false.
  bool repl_ack = false;
  int repl_ack_timeout_ms = 1'000;
  /// Starting role and fencing term (loaded from `term_file` by the daemon
  /// main before the service is built).
  ServiceRole role = ServiceRole::kStandalone;
  uint64_t term = 1;
  /// When non-empty, PROMOTE persists the accepted term here (write +
  /// atomic rename) so a restarted node keeps its fencing position.
  std::string term_file;
  /// Invoked once per accepted PROMOTE, outside the write mutex. The
  /// daemon wires this to ReplicationFollower::Stop.
  std::function<void()> on_promote;
};

/// Per-request transport context: which connection the request arrived on
/// and that connection's flight-recorder ring (null = no recording).
struct RequestContext {
  FlightRing* flight = nullptr;
  uint64_t connection_id = 0;
};

/// The transport-facing request interface SocketServer serves. BbsService
/// (below) and cluster::RouterService (src/cluster/router.h) both implement
/// it, so one accept loop fronts a single shard and a whole fleet alike.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  /// Maps one request document to one response document. Thread-safe.
  virtual obs::JsonValue Handle(const obs::JsonValue& request,
                                const RequestContext& ctx) = 0;

  virtual ServiceMetrics& metrics() = 0;

  /// Per-connection flight recorder, when the handler keeps one.
  virtual FlightRecorder* flight_recorder() const { return nullptr; }

  /// Lets the transport publish its live connection counter (reported by
  /// STATS next to the watermark gauge). `counter` must outlive the
  /// handler.
  virtual void AttachConnectionCounter(const std::atomic<uint64_t>*) {}

  /// True when `verb` upgrades the connection to a long-lived stream
  /// (currently only WALSTREAM on a replicating primary). The transport
  /// then calls ServeStream instead of Handle and closes afterwards.
  virtual bool IsStreamingVerb(const std::string&) const { return false; }

  /// Serves a streaming verb on the connection's thread until `stop`, the
  /// peer disconnecting, or an error. Only called for verbs IsStreamingVerb
  /// accepted.
  virtual void ServeStream(const obs::JsonValue& /*request*/, int /*fd*/,
                           const std::atomic<bool>& /*stop*/) {}
};

class BbsService : public RequestHandler {
 public:
  /// `index` must outlive the service. `db` may be null (MINE disabled;
  /// INSERT updates only the index).
  BbsService(SnapshotManager* index, TransactionDatabase* db,
             const ServiceOptions& options);

  /// Maps one request to one response. Never throws; protocol errors come
  /// back as {"ok": false, "error": {...}} responses. Thread-safe.
  obs::JsonValue Handle(const obs::JsonValue& request) {
    return Handle(request, RequestContext{});
  }

  /// Same, with transport context (flight-recorder ring, connection id).
  obs::JsonValue Handle(const obs::JsonValue& request,
                        const RequestContext& ctx) override;

  /// The schema-versioned service report (STATS payload, shutdown
  /// artifact).
  obs::JsonValue BuildStatsReport() const;

  /// Stops admitting COUNTs and executes everything already admitted.
  /// After Drain, COUNT answers Unavailable; PING/STATS still work.
  void Drain();

  ServiceMetrics& metrics() override { return metrics_; }
  const ServiceMetrics& metrics() const { return metrics_; }

  FlightRecorder* flight_recorder() const override {
    return options_.flight_recorder;
  }

  /// Lets the transport publish its live connection counter so STATS can
  /// report the current count next to the watermark gauge. `counter` must
  /// outlive the service.
  void AttachConnectionCounter(const std::atomic<uint64_t>* counter) override {
    live_connections_.store(counter, std::memory_order_release);
  }

  /// Microseconds since service start (the timebase of window rotation,
  /// slow-log records, and flight-recorder events).
  uint64_t NowRelMicros() const;

  bool IsStreamingVerb(const std::string& verb) const override;
  void ServeStream(const obs::JsonValue& request, int fd,
                   const std::atomic<bool>& stop) override;

  /// Applies record batches shipped over WALSTREAM: each batch goes
  /// through the same WAL-then-apply path as an INSERT, under the write
  /// mutex. Called from the replication follower's thread.
  Status ApplyReplicated(const std::vector<std::vector<Itemset>>& batches);

  ServiceRole role() const {
    return static_cast<ServiceRole>(role_.load(std::memory_order_relaxed));
  }
  uint64_t term() const { return term_.load(std::memory_order_relaxed); }

 private:
  obs::JsonValue HandlePing();
  obs::JsonValue HandleCount(const obs::JsonValue& request,
                             const CountObs& count_obs, CountResult* out,
                             bool* counted);
  obs::JsonValue HandleInsert(const obs::JsonValue& request);
  obs::JsonValue HandleMine(const obs::JsonValue& request);
  obs::JsonValue HandleStats();
  obs::JsonValue HandleCheckpoint();
  obs::JsonValue HandleDump();
  obs::JsonValue HandleShardInfo();
  obs::JsonValue HandleMineCandidates(const obs::JsonValue& request);
  obs::JsonValue HandlePromote(const obs::JsonValue& request);
  /// The report's "replication" section for this daemon's role (null when
  /// replication is not configured).
  obs::JsonValue BuildReplicationSection() const;

  SnapshotManager* index_;
  TransactionDatabase* db_;
  DurabilityManager* durability_;
  ServiceOptions options_;
  ServiceMetrics metrics_;
  CountScheduler scheduler_;
  // Serializes INSERT, MINE, and CHECKPOINT; mutable so the const STATS
  // path can take it briefly to read durability counters consistently.
  mutable std::mutex write_mu_;
  std::atomic<bool> draining_{false};
  /// Replication role and fencing term; PROMOTE flips them (under
  /// write_mu_ for the transition, atomics so readers never block).
  std::atomic<int> role_;
  std::atomic<uint64_t> term_;
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> request_seq_{0};
  std::atomic<const std::atomic<uint64_t>*> live_connections_{nullptr};
  std::chrono::steady_clock::time_point start_;
};

struct SocketServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port().
  uint16_t port = 0;
  int backlog = 64;
  /// Poll granularity of the accept/read loops; bounds Stop() latency.
  int poll_interval_ms = 200;
};

class SocketServer {
 public:
  /// `service` must outlive the server.
  SocketServer(RequestHandler* service, const SocketServerOptions& options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and spawns the accept loop.
  Status Start();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, finish in-flight requests, join all
  /// connection threads. Idempotent.
  void Stop();

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(OwnedFd fd, Connection* slot, uint64_t connection_id);
  void ReapFinishedLocked();

  RequestHandler* service_;
  SocketServerOptions options_;
  OwnedFd listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> open_connections_{0};
  std::atomic<uint64_t> next_connection_id_{0};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_SERVER_H_
