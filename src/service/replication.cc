#include "service/replication.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "service/wire.h"
#include "util/fault_injector.h"
#include "util/socket.h"

namespace bbsmine::service {

namespace {

/// A non-ok frame's error message, for log lines.
std::string FrameErrorMessage(const obs::JsonValue& frame) {
  if (frame.kind() == obs::JsonValue::Kind::kObject && frame.Has("error") &&
      frame.at("error").kind() == obs::JsonValue::Kind::kObject &&
      frame.at("error").Has("message")) {
    return frame.at("error").at("message").AsString();
  }
  return "unspecified error";
}

bool IsUint(const obs::JsonValue& doc, const std::string& key) {
  return doc.kind() == obs::JsonValue::Kind::kObject && doc.Has(key) &&
         doc.at(key).is_number();
}

}  // namespace

std::string HexEncode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 15]);
  }
  return out;
}

Result<std::string> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex digit in hex string");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

ReplicationSource::ReplicationSource(DurabilityManager* durability,
                                     std::function<uint64_t()> applied_txns,
                                     const ReplicationSourceOptions& options)
    : durability_(durability),
      applied_txns_(std::move(applied_txns)),
      options_(options) {}

void ReplicationSource::NoteAck(uint64_t txn) {
  durability_->NoteReplicationAck(txn);
  uint64_t seen = last_acked_txn_.load(std::memory_order_relaxed);
  bool advanced = false;
  while (txn > seen) {
    if (last_acked_txn_.compare_exchange_weak(seen, txn,
                                              std::memory_order_relaxed)) {
      advanced = true;
      break;
    }
  }
  if (advanced) {
    // Lock before notifying so a WaitForAck between its predicate check
    // and its wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(ack_mu_);
    ack_cv_.notify_all();
  }
}

bool ReplicationSource::WaitForAck(uint64_t txn, int timeout_ms) {
  std::unique_lock<std::mutex> lock(ack_mu_);
  return ack_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return last_acked_txn_.load(std::memory_order_relaxed) >= txn;
  });
}

bool ReplicationSource::DrainAcks(int fd, int timeout_ms) {
  int wait = timeout_ms;
  for (;;) {
    Result<obs::JsonValue> frame = ReadFrame(fd, wait);
    if (!frame.ok()) {
      // Unavailable = nothing waiting (the normal idle case); anything
      // else means the follower is gone and the stream should end.
      return frame.status().code() == StatusCode::kUnavailable;
    }
    if (IsUint(*frame, "ack")) NoteAck(frame->at("ack").AsUint());
    wait = 0;  // drain whatever else is already buffered, without blocking
  }
}

void ReplicationSource::Serve(const obs::JsonValue& handshake, int fd,
                              const std::atomic<bool>& stop) {
  Status armed = FaultInjector::Hit("repl.handshake.primary");
  if (!armed.ok()) {
    (void)WriteFrame(fd, ErrorResponse("WALSTREAM", armed));
    return;
  }
  if (!IsUint(handshake, "watermark")) {
    (void)WriteFrame(
        fd, ErrorResponse("WALSTREAM",
                          Status::InvalidArgument(
                              "WALSTREAM requires a numeric \"watermark\"")));
    return;
  }
  const uint64_t watermark = handshake.at("watermark").AsUint();
  const uint64_t applied = applied_txns_();
  if (watermark > applied) {
    (void)WriteFrame(
        fd, ErrorResponse(
                "WALSTREAM",
                Status::InvalidArgument(
                    "follower watermark " + std::to_string(watermark) +
                    " is ahead of the primary (" + std::to_string(applied) +
                    " transactions) — it followed a different history")));
    return;
  }
  // One follower per primary: the replication floor and the semi-sync ack
  // are a single watermark (a monotonic max), so a second concurrent
  // stream would let the faster follower's acks release WAL records the
  // slower one still needs — and the slower follower has no bootstrap
  // path once they are truncated away. Reject the newcomer outright; a
  // legitimately reconnecting follower retries after its backoff and wins
  // the slot once the stale connection is reaped.
  uint64_t no_followers = 0;
  if (!followers_.compare_exchange_strong(no_followers, 1,
                                          std::memory_order_relaxed)) {
    (void)WriteFrame(
        fd, ErrorResponse(
                "WALSTREAM",
                Status::Unavailable(
                    "a follower is already attached; bbsmined streams to "
                    "exactly one follower per primary")));
    return;
  }
  // Arm the checkpoint-truncate floor before acknowledging the handshake:
  // from here on the WAL keeps every record past the follower's ack.
  durability_->EnableReplicationRetention();
  NoteAck(watermark);

  obs::JsonValue accepted = OkResponse("WALSTREAM");
  accepted.Set("watermark", obs::JsonValue::Uint(watermark));
  accepted.Set("end_txn", obs::JsonValue::Uint(applied));
  if (!WriteFrame(fd, accepted).ok()) {
    followers_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }

  uint64_t cursor = watermark;
  // The byte-offset memo keeps the idle poll O(new records): without it
  // every poll_interval_ms the source would re-read and re-parse the
  // whole log from its base — and the retention floor can hold that log
  // long past the checkpoint.
  WriteAheadLog::StreamCursor stream_cursor;
  while (!stop.load(std::memory_order_acquire)) {
    Result<WriteAheadLog::StreamChunk> chunk = WriteAheadLog::ReadRecordsFrom(
        durability_->wal_path(), cursor, options_.chunk_bytes,
        &stream_cursor);
    if (!chunk.ok()) {
      (void)WriteFrame(fd, ErrorResponse("WALSTREAM", chunk.status()));
      break;
    }
    lag_bytes_.store(chunk->bytes_remaining - chunk->data.size(),
                     std::memory_order_relaxed);
    if (chunk->records > 0) {
      obs::JsonValue frame = OkResponse("WALSTREAM");
      frame.Set("kind", obs::JsonValue::String("records"));
      frame.Set("start_txn", obs::JsonValue::Uint(cursor));
      frame.Set("transactions", obs::JsonValue::Uint(chunk->transactions));
      frame.Set("records", obs::JsonValue::Uint(chunk->records));
      frame.Set("data", obs::JsonValue::String(HexEncode(chunk->data)));
      if (!WriteFrame(fd, frame).ok()) break;
      cursor += chunk->transactions;
      last_streamed_txn_.store(cursor, std::memory_order_relaxed);
      records_shipped_.fetch_add(chunk->records, std::memory_order_relaxed);
      bytes_shipped_.fetch_add(chunk->data.size(), std::memory_order_relaxed);
      if (!DrainAcks(fd, 0)) break;
    } else {
      obs::JsonValue frame = OkResponse("WALSTREAM");
      frame.Set("kind", obs::JsonValue::String("heartbeat"));
      frame.Set("end_txn", obs::JsonValue::Uint(chunk->log_end_txn));
      if (!WriteFrame(fd, frame).ok()) break;
      if (!DrainAcks(fd, options_.poll_interval_ms)) break;
    }
  }
  followers_.fetch_sub(1, std::memory_order_relaxed);
}

ReplicationSource::Stats ReplicationSource::stats() const {
  Stats stats;
  stats.followers = followers_.load(std::memory_order_relaxed);
  stats.last_streamed_txn =
      last_streamed_txn_.load(std::memory_order_relaxed);
  stats.last_acked_txn = last_acked_txn_.load(std::memory_order_relaxed);
  stats.records_shipped = records_shipped_.load(std::memory_order_relaxed);
  stats.bytes_shipped = bytes_shipped_.load(std::memory_order_relaxed);
  stats.lag_bytes = lag_bytes_.load(std::memory_order_relaxed);
  stats.ack_timeouts = ack_timeouts_.load(std::memory_order_relaxed);
  return stats;
}

ReplicationFollower::ReplicationFollower(
    const ReplicationFollowerOptions& options, WatermarkFn watermark,
    ApplyFn apply)
    : options_(options),
      watermark_(std::move(watermark)),
      apply_(std::move(apply)) {}

ReplicationFollower::~ReplicationFollower() { Stop(); }

void ReplicationFollower::Start() {
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
}

void ReplicationFollower::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    sleep_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void ReplicationFollower::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    Status status = RunOnce();
    connected_.store(false, std::memory_order_relaxed);
    if (stop_.load(std::memory_order_acquire)) break;
    if (!status.ok() && status.code() != StatusCode::kNotFound &&
        status.code() != StatusCode::kUnavailable) {
      std::fprintf(stderr, "bbsmined: replication stream to %s failed: %s\n",
                   primary_endpoint().c_str(), status.ToString().c_str());
    }
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.reconnect_backoff_ms),
        [&] { return stop_.load(std::memory_order_acquire); });
  }
  running_.store(false, std::memory_order_relaxed);
}

Status ReplicationFollower::RunOnce() {
  Result<OwnedFd> fd =
      ConnectTcp(options_.host, options_.port, options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  BBSMINE_RETURN_IF_ERROR(FaultInjector::Hit("repl.handshake.follower"));

  obs::JsonValue handshake = obs::JsonValue::Object();
  handshake.Set("verb", obs::JsonValue::String("WALSTREAM"));
  handshake.Set("watermark", obs::JsonValue::Uint(watermark_()));
  BBSMINE_RETURN_IF_ERROR(WriteFrame(fd->get(), handshake));

  Result<obs::JsonValue> reply = ReadFrame(fd->get(), options_.io_timeout_ms);
  while (!reply.ok() &&
         reply.status().code() == StatusCode::kUnavailable &&
         !stop_.load(std::memory_order_acquire)) {
    reply = ReadFrame(fd->get(), options_.io_timeout_ms);
  }
  if (!reply.ok()) return reply.status();
  if (reply->kind() != obs::JsonValue::Kind::kObject || !reply->Has("ok") ||
      !reply->at("ok").AsBool()) {
    return Status::IoError("primary rejected WALSTREAM: " +
                           FrameErrorMessage(*reply));
  }
  connected_.store(true, std::memory_order_relaxed);
  if (IsUint(*reply, "end_txn")) {
    primary_end_txn_.store(reply->at("end_txn").AsUint(),
                           std::memory_order_relaxed);
  }

  while (!stop_.load(std::memory_order_acquire)) {
    Result<obs::JsonValue> frame = ReadFrame(fd->get(), options_.io_timeout_ms);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kUnavailable) {
        continue;  // idle poll: re-check the stop flag
      }
      return frame.status();
    }
    const obs::JsonValue& doc = *frame;
    if (doc.kind() != obs::JsonValue::Kind::kObject || !doc.Has("ok")) {
      return Status::IoError("malformed WALSTREAM frame from primary");
    }
    if (!doc.at("ok").AsBool()) {
      return Status::IoError("primary ended WALSTREAM: " +
                             FrameErrorMessage(doc));
    }
    const std::string kind =
        doc.Has("kind") ? doc.at("kind").AsString() : "";
    if (kind == "heartbeat") {
      if (IsUint(doc, "end_txn")) {
        primary_end_txn_.store(doc.at("end_txn").AsUint(),
                               std::memory_order_relaxed);
      }
      continue;
    }
    if (kind != "records" || !IsUint(doc, "start_txn") ||
        !doc.Has("data") ||
        doc.at("data").kind() != obs::JsonValue::Kind::kString) {
      return Status::IoError("malformed WALSTREAM frame from primary");
    }
    Result<std::string> raw = HexDecode(doc.at("data").AsString());
    if (!raw.ok()) {
      crc_rejects_.fetch_add(1, std::memory_order_relaxed);
      return raw.status();
    }
    std::vector<std::vector<Itemset>> batches;
    Status decoded = WriteAheadLog::DecodeRecords(*raw, &batches);
    if (!decoded.ok()) {
      // A chunk that fails CRC or structural validation is never applied —
      // the connection drops and the reconnect re-fetches clean bytes from
      // the durable watermark.
      crc_rejects_.fetch_add(1, std::memory_order_relaxed);
      return decoded;
    }
    const uint64_t local = watermark_();
    if (doc.at("start_txn").AsUint() != local) {
      return Status::IoError(
          "WALSTREAM position mismatch: primary sent records from " +
          std::to_string(doc.at("start_txn").AsUint()) +
          ", follower is at " + std::to_string(local));
    }
    BBSMINE_RETURN_IF_ERROR(apply_(batches));
    records_applied_.fetch_add(batches.size(), std::memory_order_relaxed);
    primary_end_txn_.store(
        std::max(primary_end_txn_.load(std::memory_order_relaxed),
                 watermark_()),
        std::memory_order_relaxed);
    obs::JsonValue ack = obs::JsonValue::Object();
    ack.Set("ack", obs::JsonValue::Uint(watermark_()));
    BBSMINE_RETURN_IF_ERROR(WriteFrame(fd->get(), ack));
  }
  return Status::Ok();
}

ReplicationFollower::Stats ReplicationFollower::stats() const {
  Stats stats;
  stats.running = running_.load(std::memory_order_relaxed);
  stats.connected = connected_.load(std::memory_order_relaxed);
  stats.primary_end_txn = primary_end_txn_.load(std::memory_order_relaxed);
  stats.records_applied = records_applied_.load(std::memory_order_relaxed);
  stats.crc_rejects = crc_rejects_.load(std::memory_order_relaxed);
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace bbsmine::service
