#include "service/snapshot.h"

#include <utility>

#include "util/thread_pool.h"

namespace bbsmine::service {

size_t Snapshot::ApproxResidentBytes() const {
  size_t total = 0;
  for (const auto& segment : state_->segments) {
    total += segment->ApproxResidentBytes();
  }
  return total;
}

size_t Snapshot::CountItemSet(const Itemset& items, IoStats* io,
                              size_t num_threads) const {
  const auto& segments = state_->segments;
  std::vector<size_t> counts(segments.size(), 0);
  std::vector<IoStats> segment_io(io != nullptr ? segments.size() : 0);
  ParallelFor(num_threads, segments.size(), [&](size_t idx) {
    counts[idx] = segments[idx]->CountItemSet(
        items, nullptr, io != nullptr ? &segment_io[idx] : nullptr);
  });
  size_t total = 0;
  for (size_t count : counts) total += count;
  if (io != nullptr) {
    for (const IoStats& per_segment : segment_io) *io += per_segment;
  }
  return total;
}

SnapshotManager::SnapshotManager(const BbsConfig& config,
                                 uint64_t segment_capacity)
    : config_(config), segment_capacity_(segment_capacity) {}

Result<SnapshotManager> SnapshotManager::Create(const BbsConfig& config,
                                                uint64_t segment_capacity) {
  if (segment_capacity == 0) {
    return Status::InvalidArgument("segment_capacity must be positive");
  }
  Result<BbsIndex> tail = BbsIndex::Create(config);
  if (!tail.ok()) return tail.status();
  SnapshotManager out(config, segment_capacity);
  out.tail_ = std::make_unique<BbsIndex>(std::move(tail).value());
  {
    std::lock_guard<std::mutex> lock(*out.mu_);
    out.PublishLocked();
  }
  return out;
}

Result<SnapshotManager> SnapshotManager::FromIndex(const SegmentedBbs& index) {
  Result<SnapshotManager> out =
      Create(index.config(), index.segment_capacity());
  if (!out.ok()) return out;
  {
    std::lock_guard<std::mutex> lock(*out->mu_);
    // Every segment but the last is sealed (full or not, it will never
    // grow again in `index`; adopting it as sealed only forgoes topping it
    // up). The last segment is the open tail: copy it into the
    // writer-private tail so future inserts extend it.
    for (size_t idx = 0; idx + 1 < index.num_segments(); ++idx) {
      out->sealed_.push_back(
          std::make_shared<const BbsIndex>(index.segment(idx)));
      out->sealed_epoch_.push_back(out->epoch_);
    }
    // An mmap-backed tail is read-only; materialize it so inserts work
    // (adopted sealed segments above stay zero-copy — the BbsIndex copy
    // shares the mapping).
    *out->tail_ = index.segment(index.num_segments() - 1).Materialize();
    out->num_transactions_ = index.num_transactions();
    out->PublishLocked();
  }
  return out;
}

Result<SnapshotManager> SnapshotManager::FromIndex(const BbsIndex& index,
                                                   uint64_t segment_capacity) {
  Result<SnapshotManager> out = Create(index.config(), segment_capacity);
  if (!out.ok()) return out;
  {
    std::lock_guard<std::mutex> lock(*out->mu_);
    if (index.num_transactions() > 0) {
      out->sealed_.push_back(std::make_shared<const BbsIndex>(index));
      out->sealed_epoch_.push_back(out->epoch_);
      out->num_transactions_ = index.num_transactions();
    }
    out->PublishLocked();
  }
  return out;
}

Status SnapshotManager::MaybeSealLocked() {
  if (tail_->num_transactions() < segment_capacity_) return Status::Ok();
  Result<BbsIndex> fresh = BbsIndex::Create(config_);
  if (!fresh.ok()) return fresh.status();
  sealed_.push_back(
      std::make_shared<const BbsIndex>(std::move(*tail_)));
  sealed_epoch_.push_back(epoch_);
  *tail_ = std::move(fresh).value();
  ++seals_;
  return Status::Ok();
}

size_t SnapshotManager::CompactColdSegments(const CompactionPolicy& policy) {
  if (!policy.enabled()) return 0;
  std::lock_guard<std::mutex> lock(*mu_);
  size_t folded = 0;
  for (size_t idx = 0; idx < sealed_.size(); ++idx) {
    const BbsIndex& segment = *sealed_[idx];
    if (segment.is_folded()) continue;
    if (policy.fold_bits >= segment.num_bits()) continue;
    if (epoch_ - sealed_epoch_[idx] < policy.cold_epochs) continue;
    // Replace the shared_ptr in place: snapshots already holding the
    // unfolded segment keep it alive; new acquisitions see the compact one.
    sealed_[idx] =
        std::make_shared<const BbsIndex>(segment.Fold(policy.fold_bits));
    ++folded;
  }
  if (folded > 0) {
    compactions_ += folded;
    PublishLocked();
  }
  return folded;
}

uint64_t SnapshotManager::compactions() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return compactions_;
}

uint64_t SnapshotManager::publications() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return publications_;
}

uint64_t SnapshotManager::seals() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return seals_;
}

void SnapshotManager::PublishLocked() {
  auto state = std::make_shared<Snapshot::State>();
  state->epoch = ++epoch_;
  state->num_transactions = num_transactions_;
  state->config = config_;
  state->segments = sealed_;  // shared by reference, never copied
  if (tail_->num_transactions() > 0) {
    // Copy-on-publish: freeze the current tail. The copy is retired
    // automatically when the last snapshot referencing it is released.
    state->segments.push_back(std::make_shared<const BbsIndex>(*tail_));
  }
  published_->Store(std::move(state));
  ++publications_;
}

Status SnapshotManager::Insert(const Itemset& items) {
  std::lock_guard<std::mutex> lock(*mu_);
  BBSMINE_RETURN_IF_ERROR(MaybeSealLocked());
  tail_->Insert(items);
  ++num_transactions_;
  PublishLocked();
  return Status::Ok();
}

Status SnapshotManager::InsertAll(const TransactionDatabase& db) {
  return InsertAll(db, 0, db.size());
}

Status SnapshotManager::InsertAll(const TransactionDatabase& db, size_t first,
                                  size_t count) {
  if (first > db.size() || count > db.size() - first) {
    return Status::OutOfRange("InsertAll range past end of database");
  }
  std::lock_guard<std::mutex> lock(*mu_);
  for (size_t t = first; t < first + count; ++t) {
    // Publish what was absorbed so far even if a seal fails mid-batch.
    Status sealed = MaybeSealLocked();
    if (!sealed.ok()) {
      PublishLocked();
      return sealed;
    }
    tail_->Insert(db.At(t).items);
    ++num_transactions_;
  }
  PublishLocked();
  return Status::Ok();
}

}  // namespace bbsmine::service
