#include "service/durability.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <chrono>

#include "util/crc32.h"
#include "util/fault_injector.h"

namespace bbsmine::service {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return StatusFromErrno("cannot create durable directory: " + dir);
}

}  // namespace

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options, SegmentedBbs bootstrap,
    TransactionDatabase* db) {
  auto start = std::chrono::steady_clock::now();
  if (options.dir.empty()) {
    return Status::InvalidArgument("durable directory must not be empty");
  }
  BBSMINE_RETURN_IF_ERROR(EnsureDirectory(options.dir));

  std::unique_ptr<DurabilityManager> mgr(
      new DurabilityManager(options, std::move(bootstrap)));
  RecoveryInfo& info = mgr->recovery_;

  // 1. Checkpoint (or the caller's bootstrap when none exists).
  const std::string manifest = mgr->CheckpointPrefix() + ".manifest";
  if (FileExists(manifest)) {
    uint64_t epoch = 0;
    Result<SegmentedBbs> loaded =
        SegmentedBbs::Load(mgr->CheckpointPrefix(), &epoch);
    if (!loaded.ok()) return loaded.status();
    mgr->recovered_ = std::move(*loaded);
    info.checkpoint_loaded = true;
    info.checkpoint_epoch = epoch;
    info.checkpoint_transactions = mgr->recovered_.num_transactions();
    if (db != nullptr && FileExists(mgr->DbPath())) {
      Result<TransactionDatabase> loaded_db =
          TransactionDatabase::Load(mgr->DbPath());
      if (!loaded_db.ok()) return loaded_db.status();
      *db = std::move(*loaded_db);
    }
  }
  const uint64_t index_covered = mgr->recovered_.num_transactions();
  const uint64_t db_covered = db != nullptr ? db->size() : 0;

  // 2. WAL replay with per-store skip: each record's absolute position is
  // base + cumulative count, and it is applied only to stores that have
  // not already covered it. This absorbs every crash window of the
  // checkpoint protocol (between db save and manifest rename, between
  // manifest rename and WAL truncate).
  Result<uint64_t> base = WriteAheadLog::ReadBaseTxnCount(mgr->WalPath());
  if (base.ok()) {
    if (*base > index_covered) {
      return Status::Corruption(
          "WAL base " + std::to_string(*base) +
          " is ahead of the recovered index (" +
          std::to_string(index_covered) +
          " transactions): checkpoint files are stale or from another run");
    }
    if (db != nullptr && *base > db_covered) {
      return Status::Corruption(
          "WAL base " + std::to_string(*base) +
          " is ahead of the recovered database (" +
          std::to_string(db_covered) + " transactions)");
    }
    uint64_t cursor = *base;
    auto apply = [&](const std::vector<Itemset>& batch) -> Status {
      const uint64_t end = cursor + batch.size();
      if (cursor < index_covered && end > index_covered) {
        return Status::Corruption(
            "checkpoint boundary falls inside a WAL record (" +
            std::to_string(cursor) + ".." + std::to_string(end) + " vs " +
            std::to_string(index_covered) + ")");
      }
      if (db != nullptr && cursor < db_covered && end > db_covered) {
        return Status::Corruption(
            "database boundary falls inside a WAL record");
      }
      if (cursor >= index_covered) {
        for (const Itemset& items : batch) {
          BBSMINE_RETURN_IF_ERROR(mgr->recovered_.Insert(items));
        }
      }
      if (db != nullptr && cursor >= db_covered) {
        for (const Itemset& items : batch) db->Append(items);
      }
      cursor = end;
      return Status::Ok();
    };
    Result<WriteAheadLog::ReplayStats> replayed =
        WriteAheadLog::Replay(mgr->WalPath(), apply);
    if (!replayed.ok()) return replayed.status();
    const uint64_t final_count = *base + replayed->transactions;
    if (final_count < index_covered ||
        (db != nullptr && final_count < db_covered)) {
      return Status::Corruption(
          "WAL ends at transaction " + std::to_string(final_count) +
          ", short of the recovered state — acknowledged records are "
          "missing");
    }
    info.wal_records_scanned = replayed->records;
    info.recovered_records = final_count - index_covered;
    info.torn_tail_bytes = replayed->torn_tail_bytes;
    info.wal_tail_truncated = replayed->tail_truncated;
    mgr->txns_since_checkpoint_ = final_count - index_covered;

    Result<WriteAheadLog> wal =
        WriteAheadLog::OpenForAppend(mgr->WalPath(), options.wal);
    if (!wal.ok()) return wal.status();
    mgr->wal_ = std::make_unique<WriteAheadLog>(std::move(*wal));
  } else if (base.status().code() == StatusCode::kNotFound) {
    // First start (or the WAL was checkpointed away and the process died
    // before Create — impossible with Truncate's atomic rename, so really
    // just first start). Without a WAL there is nothing to reconcile a
    // db/index divergence with.
    if (db != nullptr && db_covered != index_covered) {
      return Status::Corruption(
          "no WAL and database covers " + std::to_string(db_covered) +
          " transactions vs index " + std::to_string(index_covered));
    }
    Result<WriteAheadLog> wal =
        WriteAheadLog::Create(mgr->WalPath(), index_covered, options.wal);
    if (!wal.ok()) return wal.status();
    mgr->wal_ = std::make_unique<WriteAheadLog>(std::move(*wal));
  } else {
    return base.status();
  }

  if (db != nullptr &&
      db->size() != mgr->recovered_.num_transactions()) {
    return Status::Internal("recovery left database and index at different "
                            "transaction counts");
  }

  mgr->capacity_ = mgr->recovered_.segment_capacity();
  info.recovery_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return mgr;
}

Status DurabilityManager::LogInsert(const std::vector<Itemset>& batch) {
  BBSMINE_RETURN_IF_ERROR(wal_->Append(batch));
  txns_since_checkpoint_ += batch.size();
  return Status::Ok();
}

Status DurabilityManager::Checkpoint(const Snapshot& snap,
                                     const TransactionDatabase* db) {
  BBSMINE_RETURN_IF_ERROR(FaultInjector::Hit("checkpoint.save"));
  if (db != nullptr && db->size() != snap.num_transactions()) {
    return Status::Internal(
        "checkpoint snapshot and database disagree: " +
        std::to_string(snap.num_transactions()) + " vs " +
        std::to_string(db->size()));
  }
  if (snap.num_transactions() == 0) {
    // Nothing durable to write — snapshots never publish empty segments,
    // and the empty state is exactly what recovery bootstraps to. Restart
    // the WAL so its base stays in step (unless the replication floor
    // holds records a follower still needs).
    if (CanTruncateWal(snap.num_transactions())) {
      BBSMINE_RETURN_IF_ERROR(wal_->Truncate(0));
    } else {
      ++wal_retained_;
    }
    txns_since_checkpoint_ = 0;
    ++checkpoints_;
    return Status::Ok();
  }

  // Segment files first, then the database, then the manifest: its atomic
  // rename is the commit point, and until it lands the previous manifest
  // (if any) still describes a complete CRC-consistent generation.
  WriteFileOptions file_options;
  file_options.fault_point = "checkpoint";
  std::vector<SegmentFileInfo> infos;
  infos.reserve(snap.num_segments());
  for (size_t idx = 0; idx < snap.num_segments(); ++idx) {
    std::string image = snap.segment(idx).Serialize();
    BBSMINE_RETURN_IF_ERROR(WriteBinaryFile(
        SegmentFilePath(CheckpointPrefix(), idx), image, file_options));
    infos.push_back(SegmentFileInfo{snap.segment(idx).num_transactions(),
                                    Crc32(image)});
  }
  if (db != nullptr) {
    BBSMINE_RETURN_IF_ERROR(db->Save(DbPath()));
  }
  BBSMINE_RETURN_IF_ERROR(WriteSegmentedManifest(
      CheckpointPrefix(), capacity_, snap.num_transactions(), snap.epoch(),
      infos, file_options));

  // Replication floor: Truncate restarts the whole file, so while a
  // follower still lacks records it stays untouched — recovery already
  // tolerates a WAL based earlier than the checkpoint (the per-store skip
  // above), so a retained log costs replay time, never correctness.
  if (CanTruncateWal(snap.num_transactions())) {
    BBSMINE_RETURN_IF_ERROR(wal_->Truncate(snap.num_transactions()));
  } else {
    ++wal_retained_;
  }
  txns_since_checkpoint_ = 0;
  ++checkpoints_;
  return Status::Ok();
}

bool DurabilityManager::CanTruncateWal(uint64_t covered) const {
  return !repl_retain_.load(std::memory_order_relaxed) ||
         repl_acked_txn_.load(std::memory_order_relaxed) >= covered;
}

}  // namespace bbsmine::service
