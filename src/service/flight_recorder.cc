#include "service/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

namespace bbsmine::service {

const char* RecordedVerbName(RecordedVerb verb) {
  switch (verb) {
    case RecordedVerb::kPing:
      return "PING";
    case RecordedVerb::kCount:
      return "COUNT";
    case RecordedVerb::kInsert:
      return "INSERT";
    case RecordedVerb::kMine:
      return "MINE";
    case RecordedVerb::kStats:
      return "STATS";
    case RecordedVerb::kCheckpoint:
      return "CHECKPOINT";
    case RecordedVerb::kDump:
      return "DUMP";
    case RecordedVerb::kUnknown:
      break;
  }
  return "UNKNOWN";
}

RecordedVerb RecordedVerbFromString(const std::string& verb) {
  if (verb == "PING") return RecordedVerb::kPing;
  if (verb == "COUNT") return RecordedVerb::kCount;
  if (verb == "INSERT") return RecordedVerb::kInsert;
  if (verb == "MINE") return RecordedVerb::kMine;
  if (verb == "STATS") return RecordedVerb::kStats;
  if (verb == "CHECKPOINT") return RecordedVerb::kCheckpoint;
  if (verb == "DUMP") return RecordedVerb::kDump;
  return RecordedVerb::kUnknown;
}

FlightRing::FlightRing(size_t capacity)
    : slots_(std::max<size_t>(1, capacity)) {}

void FlightRing::Record(const FlightEvent& event) {
  uint64_t head = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[head % slots_.size()];
  // Seqlock write side: odd lock value marks the slot torn. The single
  // writer never contends with itself, so plain increment semantics hold.
  uint64_t lock = slot.lock.load(std::memory_order_relaxed);
  slot.lock.store(lock + 1, std::memory_order_release);
  slot.seq.store(head, std::memory_order_relaxed);
  slot.start_rel_us.store(event.start_rel_us, std::memory_order_relaxed);
  slot.latency_us.store(event.latency_us, std::memory_order_relaxed);
  slot.queue_wait_us.store(event.queue_wait_us, std::memory_order_relaxed);
  slot.epoch.store(event.epoch, std::memory_order_relaxed);
  slot.batch_size.store(event.batch_size, std::memory_order_relaxed);
  slot.verb.store(static_cast<uint8_t>(event.verb),
                  std::memory_order_relaxed);
  slot.ok.store(event.ok ? 1 : 0, std::memory_order_relaxed);
  for (size_t i = 0; i < FlightEvent::kTraceIdBytes; ++i) {
    slot.trace_id[i].store(event.trace_id[i], std::memory_order_relaxed);
  }
  slot.lock.store(lock + 2, std::memory_order_release);
  head_.store(head + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRing::Read() const {
  uint64_t head = head_.load(std::memory_order_acquire);
  size_t retained = static_cast<size_t>(
      std::min<uint64_t>(head, slots_.size()));
  std::vector<FlightEvent> events;
  events.reserve(retained);
  uint64_t first = head - retained;
  for (uint64_t s = first; s < head; ++s) {
    const Slot& slot = slots_[s % slots_.size()];
    uint64_t before = slot.lock.load(std::memory_order_acquire);
    if (before & 1) continue;  // mid-write
    FlightEvent event;
    event.seq = slot.seq.load(std::memory_order_relaxed);
    event.start_rel_us = slot.start_rel_us.load(std::memory_order_relaxed);
    event.latency_us = slot.latency_us.load(std::memory_order_relaxed);
    event.queue_wait_us = slot.queue_wait_us.load(std::memory_order_relaxed);
    event.epoch = slot.epoch.load(std::memory_order_relaxed);
    event.batch_size = slot.batch_size.load(std::memory_order_relaxed);
    event.verb = static_cast<RecordedVerb>(
        slot.verb.load(std::memory_order_relaxed));
    event.ok = slot.ok.load(std::memory_order_relaxed) != 0;
    for (size_t i = 0; i < FlightEvent::kTraceIdBytes; ++i) {
      event.trace_id[i] = slot.trace_id[i].load(std::memory_order_relaxed);
    }
    event.trace_id[FlightEvent::kTraceIdBytes - 1] = '\0';
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.lock.load(std::memory_order_relaxed) != before) {
      continue;  // overwritten while reading
    }
    events.push_back(event);
  }
  return events;
}

void FlightRing::Reset() {
  head_.store(0, std::memory_order_release);
}

FlightRecorder::FlightRecorder(size_t ring_capacity, size_t max_rings)
    : ring_capacity_(std::max<size_t>(1, ring_capacity)),
      max_rings_(std::max<size_t>(1, max_rings)) {}

FlightRing* FlightRecorder::AcquireRing(uint64_t connection_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (holders_.size() >= max_rings_) {
    // Recycle the oldest released ring; its history is the price of the
    // bound. With every ring still active, fall through and grow anyway —
    // wedging live connections over a debug buffer would be backwards.
    Holder* oldest = nullptr;
    for (Holder& holder : holders_) {
      if (holder.active) continue;
      if (oldest == nullptr || holder.acquired_order < oldest->acquired_order) {
        oldest = &holder;
      }
    }
    if (oldest != nullptr) {
      oldest->ring->Reset();
      oldest->connection_id = connection_id;
      oldest->acquired_order = next_order_++;
      oldest->active = true;
      return oldest->ring.get();
    }
  }
  Holder holder;
  holder.ring = std::make_unique<FlightRing>(ring_capacity_);
  holder.connection_id = connection_id;
  holder.acquired_order = next_order_++;
  holder.active = true;
  holders_.push_back(std::move(holder));
  return holders_.back().ring.get();
}

void FlightRecorder::ReleaseRing(FlightRing* ring) {
  if (ring == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (Holder& holder : holders_) {
    if (holder.ring.get() == ring) {
      holder.active = false;
      return;
    }
  }
}

obs::JsonValue FlightRecorder::DumpLocked(uint64_t now_rel_us) const {
  using obs::JsonValue;
  JsonValue dump = JsonValue::Object();
  dump.Set("schema_version", JsonValue::Int(1));
  dump.Set("kind", JsonValue::String("bbsmined_flight_recorder"));
  dump.Set("ring_capacity", JsonValue::Uint(ring_capacity_));
  dump.Set("dumped_at_us", JsonValue::Uint(now_rel_us));
  JsonValue connections = JsonValue::Array();
  for (const Holder& holder : holders_) {
    JsonValue conn = JsonValue::Object();
    conn.Set("connection", JsonValue::Uint(holder.connection_id));
    conn.Set("active", JsonValue::Bool(holder.active));
    conn.Set("recorded", JsonValue::Uint(holder.ring->recorded()));
    JsonValue events = JsonValue::Array();
    for (const FlightEvent& event : holder.ring->Read()) {
      JsonValue e = JsonValue::Object();
      e.Set("seq", JsonValue::Uint(event.seq));
      e.Set("trace_id", JsonValue::String(event.trace_id));
      e.Set("verb", JsonValue::String(RecordedVerbName(event.verb)));
      e.Set("start_us", JsonValue::Uint(event.start_rel_us));
      e.Set("latency_us", JsonValue::Uint(event.latency_us));
      e.Set("queue_wait_us", JsonValue::Uint(event.queue_wait_us));
      e.Set("batch_size", JsonValue::Uint(event.batch_size));
      e.Set("epoch", JsonValue::Uint(event.epoch));
      e.Set("ok", JsonValue::Bool(event.ok));
      events.Append(std::move(e));
    }
    conn.Set("events", std::move(events));
    connections.Append(std::move(conn));
  }
  dump.Set("connections", std::move(connections));
  return dump;
}

obs::JsonValue FlightRecorder::DumpJson(uint64_t now_rel_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  return DumpLocked(now_rel_us);
}

obs::JsonValue FlightRecorder::DumpJsonForCrash(uint64_t now_rel_us) const {
  // The crash path must never deadlock on a lock a doomed thread holds;
  // spin briefly for the holders lock, then dump whatever we can.
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (mu_.try_lock()) {
      std::lock_guard<std::mutex> lock(mu_, std::adopt_lock);
      return DumpLocked(now_rel_us);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  using obs::JsonValue;
  JsonValue dump = JsonValue::Object();
  dump.Set("schema_version", JsonValue::Int(1));
  dump.Set("kind", JsonValue::String("bbsmined_flight_recorder"));
  dump.Set("ring_capacity", JsonValue::Uint(ring_capacity_));
  dump.Set("dumped_at_us", JsonValue::Uint(now_rel_us));
  dump.Set("truncated", JsonValue::Bool(true));
  dump.Set("connections", JsonValue::Array());
  return dump;
}

}  // namespace bbsmine::service
