// The slow-query log: one structured JSON line per request whose latency
// crossed the daemon's --slow-query-us threshold.
//
// Metrics tell you the p99 moved; the slow log tells you *which* requests
// moved it, with enough attribution (trace_id, queue wait, batch fusion
// width, slice words streamed) to decide whether the request was expensive
// or just unlucky. Each record is a single line of compact JSON, so the
// file greps and tails like any structured log.
//
// Torn-line tolerance: a crash can leave a half-written final line. On
// reopen the log checks the last byte and starts appends on a fresh line,
// so one torn record never corrupts the records after it — readers skip
// lines that fail to parse and keep everything else.

#ifndef BBSMINE_SERVICE_SLOW_LOG_H_
#define BBSMINE_SERVICE_SLOW_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace bbsmine::service {

/// One slow request's attribution, rendered as a JSON line.
struct SlowQueryRecord {
  uint64_t at_rel_us = 0;  ///< request start, µs since service start
  std::string trace_id;
  std::string verb;
  uint64_t latency_us = 0;
  uint64_t queue_wait_us = 0;  ///< COUNT admission wait (0 otherwise)
  uint32_t batch_size = 0;     ///< COUNT batch fusion width (0 otherwise)
  uint64_t items = 0;          ///< itemset size of a COUNT/INSERT
  uint64_t epoch = 0;          ///< snapshot epoch the answer saw (if any)
  uint64_t slice_words = 0;    ///< BBS slice words streamed for the answer
  std::string backend;         ///< index backend serving the request
  bool ok = false;
};

/// Append-only JSON-lines sink. Thread-safe; appends take one mutex and
/// one buffered fwrite + flush (the slow path is already slow).
class SlowQueryLog {
 public:
  ~SlowQueryLog();

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Opens `path` for appending, healing a torn final line first.
  static Result<std::unique_ptr<SlowQueryLog>> Open(const std::string& path);

  void Append(const SlowQueryRecord& record);

  uint64_t appended() const;

  const std::string& path() const { return path_; }

 private:
  explicit SlowQueryLog(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;
  mutable std::mutex mu_;
  uint64_t appended_ = 0;
};

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_SLOW_LOG_H_
