// Client-side request helper with retry/backoff on backpressure.
//
// The scheduler sheds load by answering Unavailable (admission queue full,
// service draining); the polite client response is exponential backoff with
// jitter, not a hot retry loop. CallWithRetry implements exactly that and
// nothing more: transport errors (connection refused, broken frames) are
// NOT retried — they signal a dead or misbehaving daemon, and retrying
// cannot help within one process lifetime; callers that want
// restart-tolerance (crash harnesses) loop at their own level.
//
// What counts as retryable:
//   * a well-formed response with error code "Unavailable";
//   * a response-read timeout (ReadFrame's Unavailable) — the daemon is
//     alive but slow, e.g. a MINE hogging the write mutex.
//
// Jitter is deterministic (seeded LCG) so tests and the crash harness are
// reproducible; real clients pass a varying seed.

#ifndef BBSMINE_SERVICE_CLIENT_H_
#define BBSMINE_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "util/status.h"

namespace bbsmine::service {

struct RetryOptions {
  /// Additional attempts after the first (0 = single shot).
  uint32_t retries = 0;
  /// Base backoff before attempt i is 2^(i-1) * backoff_ms, capped at
  /// max_backoff_ms, plus jitter in [0, base).
  uint32_t backoff_ms = 100;
  uint32_t max_backoff_ms = 5000;
  /// Per-attempt response timeout.
  int timeout_ms = 30'000;
  /// Seed of the deterministic jitter sequence.
  uint64_t jitter_seed = 1;
};

struct CallOutcome {
  obs::JsonValue response;
  /// Attempts made (1 = no retry needed).
  uint32_t attempts = 0;
  /// True when every attempt (retries exhausted) ended in backpressure;
  /// `response` then holds the final Unavailable error response.
  bool backpressure_exhausted = false;
};

/// Connects to `host:port`, sends `request`, and reads the response,
/// retrying per `options` on backpressure. Returns:
///  * OK outcome         — a response was obtained (inspect response["ok"];
///                         backpressure_exhausted marks a final
///                         Unavailable after all retries);
///  * error Status       — transport failure (connect/send/read), never
///                         retried; kUnavailable status only when every
///                         attempt timed out waiting for a response.
Result<CallOutcome> CallWithRetry(const std::string& host, uint16_t port,
                                  const obs::JsonValue& request,
                                  const RetryOptions& options);

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_CLIENT_H_
