// Client-side request helper with retry/backoff on backpressure.
//
// The scheduler sheds load by answering Unavailable (admission queue full,
// service draining); the polite client response is exponential backoff with
// jitter, not a hot retry loop. CallWithRetry implements exactly that and
// nothing more: transport errors (connection refused, broken frames) are
// NOT retried — they signal a dead or misbehaving daemon, and retrying
// cannot help within one process lifetime; callers that want
// restart-tolerance (crash harnesses) loop at their own level.
//
// What counts as retryable:
//   * a well-formed response with error code "Unavailable" — the daemon
//     definitively did NOT apply the request, so re-sending any verb is
//     safe;
//   * a response-read timeout (ReadFrame's Unavailable) — but ONLY for
//     idempotent verbs (PING / COUNT / STATS / MINE). The daemon is alive
//     and may well have applied the request before answering slowly, so a
//     timed-out INSERT must NOT be re-sent: the daemon could have
//     WAL-logged and applied it already, and a blind re-send double-counts
//     the transactions. Timeouts on non-idempotent verbs surface as
//     StatusCode::kIndeterminate — the at-most-once contract
//     (docs/SERVICE.md § "Client retries"): the caller must reconcile
//     (e.g. COUNT a sentinel) before re-sending.
//
// Jitter is deterministic (seeded LCG) so tests and the crash harness are
// reproducible; real clients pass a varying seed.

#ifndef BBSMINE_SERVICE_CLIENT_H_
#define BBSMINE_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "util/socket.h"
#include "util/status.h"

namespace bbsmine::service {

struct RetryOptions {
  /// Additional attempts after the first (0 = single shot).
  uint32_t retries = 0;
  /// Base backoff before attempt i is 2^(i-1) * backoff_ms, plus jitter in
  /// [0, base); base and the jittered sum are both capped at
  /// max_backoff_ms, so no sleep ever exceeds the configured maximum.
  uint32_t backoff_ms = 100;
  uint32_t max_backoff_ms = 5000;
  /// Per-attempt response timeout.
  int timeout_ms = 30'000;
  /// Seed of the deterministic jitter sequence.
  uint64_t jitter_seed = 1;
};

/// True when `verb` may be blindly re-sent after a response timeout
/// (applying it twice is indistinguishable from applying it once).
/// PING / COUNT / STATS / MINE qualify; INSERT and anything unknown do
/// not — the conservative default for new verbs is at-most-once.
bool IsIdempotentVerb(const std::string& verb);

/// The backoff before retry attempt `attempt` (>= 1): exponential base
/// with deterministic jitter, clamped so base + jitter never exceeds
/// options.max_backoff_ms. Advances `jitter_state` (seed it from
/// options.jitter_seed). Exposed for the clamp regression test.
uint64_t RetryBackoffMs(const RetryOptions& options, uint32_t attempt,
                        uint64_t* jitter_state);

struct CallOutcome {
  obs::JsonValue response;
  /// Attempts made (1 = no retry needed).
  uint32_t attempts = 0;
  /// True when every attempt (retries exhausted) ended in backpressure;
  /// `response` then holds the final Unavailable error response.
  bool backpressure_exhausted = false;
};

/// A persistent client connection: connect once, issue many calls over the
/// same TCP stream. The session is lazy — the first Call (or a Call after
/// Close) reconnects — so one session object models "my link to that
/// daemon" across its whole lifetime. Move-only; not thread-safe (the
/// router keeps a pool and checks sessions out under a lock).
///
/// Stream hygiene: a response timeout or transport error closes the
/// socket. The daemon may still write the stale response later, and a
/// fresh request on the same stream would read it as its own answer;
/// reconnecting is the only safe resynchronization.
class ClientSession {
 public:
  /// A lazy session: no connection is made until the first Call.
  ClientSession(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  /// An eager session: fails fast when the daemon is unreachable.
  static Result<ClientSession> Connect(const std::string& host, uint16_t port);

  ClientSession(ClientSession&&) = default;
  ClientSession& operator=(ClientSession&&) = default;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  bool connected() const { return fd_.valid(); }
  void Close() { fd_.Reset(); }

  /// One request/response exchange (no retries). Reconnects first when the
  /// session is closed. Errors:
  ///  * kUnavailable — the request was fully sent but no response arrived
  ///    within `timeout_ms` (the socket is closed; whether the daemon
  ///    applied the request is unknown — callers own the idempotence
  ///    decision, or use CallWithRetry which applies the standard policy);
  ///  * anything else — transport failure (socket closed).
  Result<obs::JsonValue> Call(const obs::JsonValue& request,
                              int timeout_ms = 30'000);

  /// The standard retry policy (header comment above) over this session:
  /// backpressure retries reuse the live connection; timeouts on
  /// idempotent verbs reconnect and retry; transport errors and
  /// non-idempotent timeouts are returned immediately.
  Result<CallOutcome> CallWithRetry(const obs::JsonValue& request,
                                    const RetryOptions& options);

 private:
  ClientSession(std::string host, uint16_t port, OwnedFd fd)
      : host_(std::move(host)), port_(port), fd_(std::move(fd)) {}

  std::string host_;
  uint16_t port_ = 0;
  OwnedFd fd_;
};

/// One-shot convenience: a throwaway session around
/// ClientSession::CallWithRetry. Returns:
///  * OK outcome         — a response was obtained (inspect response["ok"];
///                         backpressure_exhausted marks a final
///                         Unavailable after all retries);
///  * error Status       — transport failure (connect/send/read), never
///                         retried; kUnavailable only when every attempt
///                         of an idempotent request timed out waiting for
///                         a response; kIndeterminate when a
///                         non-idempotent request (INSERT) was fully sent
///                         but the response timed out — it may or may not
///                         have been applied, and was NOT re-sent.
Result<CallOutcome> CallWithRetry(const std::string& host, uint16_t port,
                                  const obs::JsonValue& request,
                                  const RetryOptions& options);

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_CLIENT_H_
