#include "service/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "service/wire.h"
#include "util/socket.h"

namespace bbsmine::service {

namespace {

bool IsBackpressureResponse(const obs::JsonValue& response) {
  if (response.kind() != obs::JsonValue::Kind::kObject ||
      !response.Has("ok") || response.at("ok").AsBool()) {
    return false;
  }
  if (!response.Has("error") ||
      response.at("error").kind() != obs::JsonValue::Kind::kObject ||
      !response.at("error").Has("code")) {
    return false;
  }
  return response.at("error").at("code").AsString() ==
         StatusCodeName(StatusCode::kUnavailable);
}

/// The request's verb, or "" when the request is not a well-formed verb
/// document (the daemon will answer InvalidArgument; retry policy treats
/// it conservatively).
std::string RequestVerb(const obs::JsonValue& request) {
  if (request.kind() != obs::JsonValue::Kind::kObject ||
      !request.Has("verb") ||
      request.at("verb").kind() != obs::JsonValue::Kind::kString) {
    return "";
  }
  return request.at("verb").AsString();
}

}  // namespace

bool IsIdempotentVerb(const std::string& verb) {
  // CHECKPOINT is excluded deliberately: it is *effectively* idempotent,
  // but the at-most-once default for anything not on this list means a new
  // verb added to the daemon can never be double-applied by an old client.
  return verb == "PING" || verb == "COUNT" || verb == "STATS" ||
         verb == "MINE" || verb == "DUMP" || verb == "SHARDINFO";
}

uint64_t RetryBackoffMs(const RetryOptions& options, uint32_t attempt,
                        uint64_t* jitter_state) {
  // Exponential backoff with jitter in [0, base): doubling spreads retry
  // storms over time, jitter spreads them across clients. Both the base
  // and the jittered sum are clamped — jitter must not smuggle the sleep
  // past the configured cap.
  uint64_t base = options.backoff_ms;
  base <<= std::min<uint32_t>(attempt - 1, 20);
  base = std::min<uint64_t>(base, options.max_backoff_ms);
  *jitter_state =
      *jitter_state * 6364136223846793005ull + 1442695040888963407ull;
  uint64_t jitter = base > 0 ? (*jitter_state >> 33) % base : 0;
  return std::min<uint64_t>(base + jitter, options.max_backoff_ms);
}

Result<ClientSession> ClientSession::Connect(const std::string& host,
                                             uint16_t port) {
  Result<OwnedFd> fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  return ClientSession(host, port, std::move(*fd));
}

Result<obs::JsonValue> ClientSession::Call(const obs::JsonValue& request,
                                           int timeout_ms) {
  if (!fd_.valid()) {
    // The connect shares the call's deadline: against a blackholed daemon
    // a default (blocking) connect would stall far past `timeout_ms`.
    Result<OwnedFd> fd = ConnectTcp(host_, port_, timeout_ms);
    if (!fd.ok()) return fd.status();
    fd_ = std::move(*fd);
  }
  Status sent = WriteFrame(fd_.get(), request);
  if (!sent.ok()) {
    Close();
    return sent;
  }
  Result<obs::JsonValue> response = ReadFrame(fd_.get(), timeout_ms);
  if (!response.ok()) {
    // Timeout or broken transport: the stream may still carry (part of) a
    // stale response, so it cannot be reused for the next request.
    Close();
    return response.status();
  }
  return response;
}

Result<CallOutcome> ClientSession::CallWithRetry(const obs::JsonValue& request,
                                                 const RetryOptions& options) {
  const bool timeout_retryable = IsIdempotentVerb(RequestVerb(request));
  uint64_t jitter_state = options.jitter_seed;
  CallOutcome outcome;
  Status last_timeout = Status::Ok();
  for (uint32_t attempt = 0; attempt <= options.retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          RetryBackoffMs(options, attempt, &jitter_state)));
    }
    ++outcome.attempts;

    Result<obs::JsonValue> response = Call(request, options.timeout_ms);
    if (!response.ok()) {
      if (response.status().code() == StatusCode::kUnavailable) {
        // Response timeout: the daemon is alive but slow. For idempotent
        // verbs, retryable. For anything else the request was fully sent
        // and may already be applied (e.g. an INSERT the daemon WAL-logged
        // before answering slowly) — re-sending could double-apply, so the
        // outcome is handed back as indeterminate instead.
        if (!timeout_retryable) {
          return Status::Indeterminate(
              "response timed out after the request was sent; it may or "
              "may not have been applied (" + response.status().message() +
              ")");
        }
        last_timeout = response.status();
        continue;
      }
      return response.status();  // transport: not retryable
    }
    outcome.response = std::move(*response);
    if (IsBackpressureResponse(outcome.response)) {
      continue;  // admission backpressure: the daemon refused it; retryable
    }
    return outcome;  // definitive answer (ok or a non-retryable error)
  }

  // Retries exhausted. Prefer reporting the last real response; if every
  // attempt timed out there is no response to hand back.
  if (outcome.response.kind() == obs::JsonValue::Kind::kObject) {
    outcome.backpressure_exhausted = true;
    return outcome;
  }
  return last_timeout.ok()
             ? Status::Unavailable("retries exhausted")
             : last_timeout;
}

Result<CallOutcome> CallWithRetry(const std::string& host, uint16_t port,
                                  const obs::JsonValue& request,
                                  const RetryOptions& options) {
  ClientSession session(host, port);
  return session.CallWithRetry(request, options);
}

}  // namespace bbsmine::service
