// The flight recorder: a bounded in-memory history of recent requests,
// kept per connection, for post-mortem "what was in flight" questions.
//
// Metrics aggregate and traces sample; neither answers "show me the last
// few requests this connection served right before the crash". The flight
// recorder does: every handled request appends one fixed-size event to a
// ring owned by its connection, and the rings are dumped as one JSON
// artifact on SIGTERM, on the DUMP verb, and from the fault-injection
// crash path (util/fault_injector.h crash hook) — the reconstruction the
// crash-torture script previously did by hand from logs.
//
// Concurrency: each ring has exactly ONE writer (the owning connection
// thread); readers (DUMP, the shutdown/crash dump) may run concurrently
// with writers, so every event slot is a seqlock over relaxed atomics —
// the writer bumps the slot's sequence to odd, stores the fields, then
// publishes the even sequence with release order; a reader that observes
// an odd or changed sequence skips the torn slot. No mutex is ever taken
// on the request path: recording is a dozen relaxed atomic stores.
//
// Rings outlive their connections (a crashed daemon mostly wants events
// from connections that already closed); the recorder retains up to
// `max_rings` rings and recycles the oldest *released* ring — resetting
// its history — only when that bound is hit.

#ifndef BBSMINE_SERVICE_FLIGHT_RECORDER_H_
#define BBSMINE_SERVICE_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace bbsmine::service {

/// Verb tag of a recorded event; small enough for one atomic byte.
enum class RecordedVerb : uint8_t {
  kUnknown = 0,
  kPing,
  kCount,
  kInsert,
  kMine,
  kStats,
  kCheckpoint,
  kDump,
};

const char* RecordedVerbName(RecordedVerb verb);
RecordedVerb RecordedVerbFromString(const std::string& verb);

/// One request's footprint in the ring. Plain-value view used on both
/// sides of the seqlock (the writer fills one, the reader extracts one).
struct FlightEvent {
  static constexpr size_t kTraceIdBytes = 24;  // truncating is fine

  uint64_t seq = 0;           ///< per-ring arrival number (0-based)
  uint64_t start_rel_us = 0;  ///< request start, µs since service start
  uint64_t latency_us = 0;
  uint64_t queue_wait_us = 0;  ///< COUNT admission wait (0 otherwise)
  uint64_t epoch = 0;          ///< snapshot epoch the answer saw (if any)
  uint32_t batch_size = 0;     ///< COUNT batch fusion width (0 otherwise)
  RecordedVerb verb = RecordedVerb::kUnknown;
  bool ok = false;
  char trace_id[kTraceIdBytes] = {};  ///< NUL-terminated, maybe truncated
};

/// Fixed-capacity single-writer ring of FlightEvents.
class FlightRing {
 public:
  explicit FlightRing(size_t capacity);

  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  /// Appends one event. Must only be called by the ring's single owner
  /// thread. Lock-free: relaxed stores bracketed by the slot seqlock.
  void Record(const FlightEvent& event);

  /// Copies out the retained events, oldest first, skipping slots torn by
  /// a concurrent Record. Safe from any thread.
  std::vector<FlightEvent> Read() const;

  /// Events ever recorded (not retained).
  uint64_t recorded() const { return head_.load(std::memory_order_acquire); }

  size_t capacity() const { return slots_.size(); }

  /// Forgets all history (recycling only; must not race the writer).
  void Reset();

 private:
  struct Slot {
    std::atomic<uint64_t> lock{0};  // seqlock: odd while being written
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> start_rel_us{0};
    std::atomic<uint64_t> latency_us{0};
    std::atomic<uint64_t> queue_wait_us{0};
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint32_t> batch_size{0};
    std::atomic<uint8_t> verb{0};
    std::atomic<uint8_t> ok{0};
    std::atomic<char> trace_id[FlightEvent::kTraceIdBytes] = {};
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};  // events ever recorded
};

/// Owns the per-connection rings and renders the dump artifact.
class FlightRecorder {
 public:
  /// `ring_capacity` events are retained per connection; at most
  /// `max_rings` rings are kept before the oldest released one is
  /// recycled.
  explicit FlightRecorder(size_t ring_capacity, size_t max_rings = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Hands out a ring for a new connection. The recorder keeps ownership;
  /// the ring stays valid (and dumpable) after release.
  FlightRing* AcquireRing(uint64_t connection_id);

  /// Marks the ring recyclable. The events stay dumpable until the ring
  /// is recycled for a newer connection under ring pressure.
  void ReleaseRing(FlightRing* ring);

  /// The dump artifact: every ring's retained events, oldest connection
  /// first. `now_rel_us` stamps the dump in service-relative time.
  obs::JsonValue DumpJson(uint64_t now_rel_us) const;

  /// Best-effort dump for the fault-injection crash path: bounded lock
  /// wait, then gives up and reports an empty dump rather than deadlock
  /// against a thread that died holding the registry lock.
  obs::JsonValue DumpJsonForCrash(uint64_t now_rel_us) const;

  size_t ring_capacity() const { return ring_capacity_; }

 private:
  struct Holder {
    std::unique_ptr<FlightRing> ring;
    uint64_t connection_id = 0;
    uint64_t acquired_order = 0;
    bool active = false;
  };

  obs::JsonValue DumpLocked(uint64_t now_rel_us) const;

  size_t ring_capacity_;
  size_t max_rings_;
  mutable std::mutex mu_;
  std::vector<Holder> holders_;
  uint64_t next_order_ = 0;
};

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_FLIGHT_RECORDER_H_
