// Append-only write-ahead log for the INSERT verb.
//
// The durability contract of bbsmined is write-ahead logging: an INSERT is
// acknowledged only after its record is in the WAL (fsynced per policy), so
// a crash at any later point — before the in-memory index applied it,
// before the next checkpoint — loses nothing that was acknowledged.
//
// On-disk layout (little-endian, docs/FORMATS.md):
//
//   header:  magic "BBSWAL01" | u32 version | u32 crc32(payload)
//            payload: u64 base_txn_count
//   record:  u32 len | u32 crc32(payload) | payload
//            payload: u32 txn_count, then per transaction
//                     u32 item_count + item_count * u32 items
//
// `base_txn_count` is the number of transactions already covered by the
// checkpoint the log extends; record i's transactions are numbers
// base + (sum of earlier record sizes) onward. One record per INSERT
// request batch makes the request the atomic durability unit.
//
// Torn-tail tolerance (the crash-recovery invariant): a kill -9 leaves the
// file an exact prefix of the bytes appended, so at most the final record
// is incomplete. Replay() accepts a well-formed prefix, physically
// truncates a torn tail (an incomplete frame, or a CRC-bad record that
// extends exactly to EOF), and reports how many bytes it discarded. A bad
// record with *more data after it* cannot be a torn append — that is real
// corruption and Replay fails with Corruption rather than silently
// dropping acknowledged records.
//
// fsync policy trades durability domain for throughput: kAlways survives
// power loss per acknowledged insert; kEveryN bounds power-loss exposure
// to N inserts; kNone still survives process crashes (the page cache holds
// written bytes) but not power loss. All three survive kill -9 identically.
//
// Thread safety: none. The service serializes Append/Truncate under its
// write mutex, matching SegmentedBbs's writer contract.

#ifndef BBSMINE_SERVICE_WAL_H_
#define BBSMINE_SERVICE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/transaction.h"
#include "util/socket.h"
#include "util/status.h"

namespace bbsmine::service {

enum class FsyncPolicy {
  kAlways,  ///< fsync after every append
  kEveryN,  ///< fsync after every N appends
  kNone,    ///< never fsync (crash-safe, not power-loss-safe)
};

struct WalOptions {
  FsyncPolicy policy = FsyncPolicy::kAlways;
  /// For kEveryN: appends between fsyncs.
  uint64_t sync_every = 8;
};

/// Parses a --fsync flag value: "always", "none", or "every=N" (N >= 1).
Status ParseFsyncSpec(const std::string& spec, WalOptions* options);

/// Renders the policy for reports/logs: "always", "none", "every:N".
std::string FsyncPolicyName(const WalOptions& options);

class WriteAheadLog {
 public:
  /// What Replay found in an existing log.
  struct ReplayStats {
    uint64_t base_txn_count = 0;
    uint64_t records = 0;          ///< valid records delivered
    uint64_t transactions = 0;     ///< transactions across those records
    uint64_t torn_tail_bytes = 0;  ///< bytes discarded from a torn tail
    bool tail_truncated = false;
  };

  /// Creates a fresh log at `path` (atomically replacing any existing
  /// file) whose records extend a state covering `base_txn_count`
  /// transactions.
  static Result<WriteAheadLog> Create(const std::string& path,
                                      uint64_t base_txn_count,
                                      const WalOptions& options);

  /// Opens an existing log for appending. The caller must have validated
  /// the file with Replay() first (which truncates any torn tail); this
  /// only re-checks the header and seeks to the end.
  static Result<WriteAheadLog> OpenForAppend(const std::string& path,
                                             const WalOptions& options);

  /// Reads just the header's base transaction count (recovery planning,
  /// before the replay pass). NotFound if the file does not exist.
  static Result<uint64_t> ReadBaseTxnCount(const std::string& path);

  /// Scans the log at `path`, invoking `apply` once per valid record with
  /// that record's transactions, in order. Physically truncates a torn
  /// tail; fails with Corruption for damage before the tail; NotFound if
  /// the file does not exist.
  static Result<ReplayStats> Replay(
      const std::string& path,
      const std::function<Status(const std::vector<Itemset>&)>& apply);

  /// One chunk of verbatim `[len | crc | payload]` record bytes, as read
  /// for replication shipping (the WALSTREAM verb). `data` concatenates
  /// whole records only; the first record's first transaction is number
  /// `start_txn`, and the chunk covers `transactions` transactions across
  /// `records` records. `log_end_txn` is where the log's valid prefix ends
  /// (start of any torn tail), so a caller can report shipping lag even
  /// when `data` is capped short of it.
  struct StreamChunk {
    uint64_t start_txn = 0;
    uint64_t transactions = 0;
    uint64_t records = 0;
    uint64_t log_end_txn = 0;
    /// Valid record bytes in the log from `start_txn` to the log's end —
    /// including `data` — so a caller can report byte lag past the cap.
    uint64_t bytes_remaining = 0;
    std::string data;
  };

  /// A resume position for repeated ReadRecordsFrom polls over a live log.
  /// A caller that hands the same cursor back on every call lets the scan
  /// seek straight to the first unread record instead of re-reading and
  /// re-parsing the whole file from its base — a tailing source polls tens
  /// of times a second, and the replication floor can hold the log long, so
  /// the steady-state poll must cost O(new records), not O(WAL). The cursor
  /// is validated before use (the header's base must match and the cached
  /// transaction must equal `from_txn`), so a checkpoint truncation — which
  /// atomically replaces the file with a new base — silently falls back to
  /// a full scan. Value-initialize and never touch the fields.
  struct StreamCursor {
    uint64_t base_txn = 0;  ///< log base the offset was computed against
    uint64_t txn = 0;       ///< first unread transaction
    uint64_t offset = 0;    ///< file offset of that transaction's record
  };

  /// Reads whole records starting at absolute transaction `from_txn` from
  /// the log at `path`, verbatim, up to ~`max_bytes` of record bytes (at
  /// least one record when any is available). Unlike Replay this NEVER
  /// truncates a torn tail — the writer may be mid-append; the scan just
  /// stops before it. Errors: NotFound when the file does not exist;
  /// InvalidArgument when `from_txn` precedes the log's base (the records
  /// were checkpointed away — the follower needs a fresh bootstrap) or
  /// lies past the log's end; Corruption when `from_txn` falls inside a
  /// record (batches are atomic — no valid watermark splits one).
  /// `cursor`, when non-null, is consulted to skip the already-streamed
  /// prefix and updated to the position after this chunk (left untouched
  /// on error).
  static Result<StreamChunk> ReadRecordsFrom(const std::string& path,
                                             uint64_t from_txn,
                                             uint64_t max_bytes,
                                             StreamCursor* cursor = nullptr);

  /// Validates and decodes concatenated `[len | crc | payload]` record
  /// bytes (the StreamChunk shape) into per-record transaction batches.
  /// Any CRC mismatch, malformed payload, or trailing partial record is
  /// Corruption — the stream ships whole records, so a receiver must
  /// reject the entire chunk rather than apply a prefix it cannot trust.
  static Status DecodeRecords(const std::string& data,
                              std::vector<std::vector<Itemset>>* batches);

  /// Appends one record holding `batch` and makes it durable per the fsync
  /// policy before returning. On failure the log is restored to its
  /// pre-append length (no torn record is left behind by a *reported*
  /// failure); if even that repair fails the log is marked broken and
  /// every later append fails fast.
  Status Append(const std::vector<Itemset>& batch);

  /// Explicit fsync (used at graceful shutdown regardless of policy).
  Status Sync();

  /// Atomically restarts the log after a checkpoint now covering
  /// `base_txn_count` transactions: a fresh header replaces the file in
  /// one rename.
  Status Truncate(uint64_t base_txn_count);

  uint64_t base_txn_count() const { return base_txn_count_; }
  uint64_t appended_records() const { return appended_records_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t fsyncs() const { return fsyncs_; }
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog() = default;

  Status SyncPerPolicy();

  std::string path_;
  WalOptions options_;
  OwnedFd fd_;
  uint64_t base_txn_count_ = 0;
  uint64_t offset_ = 0;  ///< current end-of-log file offset
  uint64_t appended_records_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t appends_since_sync_ = 0;
  uint64_t fsyncs_ = 0;
  bool broken_ = false;
};

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_WAL_H_
