#include "service/scheduler.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <unordered_map>
#include <utility>

#include "obs/json.h"
#include "util/iomodel.h"

namespace bbsmine::service {

CountScheduler::CountScheduler(const SnapshotManager* index,
                               const SchedulerOptions& options,
                               ServiceMetrics* metrics, obs::Tracer* tracer)
    : index_(index),
      options_(options),
      metrics_(metrics),
      tracer_(tracer),
      pool_(ResolveThreads(options.num_threads)),
      dispatcher_([this] { DispatcherLoop(); }) {}

CountScheduler::~CountScheduler() { Shutdown(); }

Status CountScheduler::Count(const Itemset& items, const CountObs& obs,
                             CountResult* out) {
  Itemset canonical = items;
  Canonicalize(&canonical);
  if (canonical.empty()) {
    return Status::InvalidArgument("COUNT requires a non-empty itemset");
  }
  std::future<CountResult> answer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return Status::Unavailable("scheduler is draining");
    }
    if (queue_.size() >= options_.max_pending) {
      if (metrics_ != nullptr) {
        metrics_->Inc(metrics_->rejected_backpressure);
      }
      return Status::Unavailable(
          "admission queue full (" + std::to_string(options_.max_pending) +
          " pending); retry later");
    }
    Request request;
    request.items = std::move(canonical);
    request.trace_id = obs.trace_id;
    request.sampled = obs.sampled && tracer_ != nullptr;
    request.admitted_at = std::chrono::steady_clock::now();
    if (request.sampled) request.admit_ts_us = tracer_->NowMicros();
    answer = request.promise.get_future();
    queue_.push_back(std::move(request));
    if (metrics_ != nullptr) {
      metrics_->GaugeMax(metrics_->queue_depth, queue_.size());
    }
  }
  cv_.notify_one();
  *out = answer.get();
  return Status::Ok();
}

void CountScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

size_t CountScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void CountScheduler::DispatcherLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    RunBatch(&batch);
  }
}

void CountScheduler::RunBatch(std::vector<Request>* batch) {
  const uint64_t batch_id = ++next_batch_id_;
  const auto batch_started_at = std::chrono::steady_clock::now();
  const bool any_sampled =
      std::any_of(batch->begin(), batch->end(),
                  [](const Request& r) { return r.sampled; });
  const double batch_ts_us =
      (tracer_ != nullptr && any_sampled) ? tracer_->NowMicros() : 0;

  // Queue-wait spans: admission to batch start, recorded on the dispatcher
  // thread but attributed to the request via its trace_id arg.
  if (tracer_ != nullptr && tracer_->enabled(obs::kTraceQueue)) {
    for (const Request& r : *batch) {
      if (!r.sampled) continue;
      std::string args = "\"trace_id\": \"" + obs::JsonEscape(r.trace_id) +
                         "\", \"batch\": " + std::to_string(batch_id);
      tracer_->AddComplete(obs::kTraceQueue, "count.queue_wait",
                           r.admit_ts_us, batch_ts_us - r.admit_ts_us,
                           std::move(args));
    }
  }

  Snapshot snap = index_->Acquire();
  size_t num_segments = snap.num_segments();

  // Collapse identical itemsets, preserving first-arrival order.
  std::map<Itemset, size_t> group_of;
  std::vector<const Itemset*> uniques;
  std::vector<size_t> request_group(batch->size());
  for (size_t r = 0; r < batch->size(); ++r) {
    auto [it, inserted] =
        group_of.emplace((*batch)[r].items, uniques.size());
    if (inserted) uniques.push_back(&it->first);
    request_group[r] = it->second;
  }

  // A sampled trace id per query group (the first sampled request's), for
  // attributing per-segment spans of the fan-out below.
  std::vector<const std::string*> group_trace(uniques.size(), nullptr);
  if (tracer_ != nullptr && tracer_->enabled(obs::kTraceSegment)) {
    for (size_t r = 0; r < batch->size(); ++r) {
      const Request& req = (*batch)[r];
      if (req.sampled && group_trace[request_group[r]] == nullptr) {
        group_trace[request_group[r]] = &req.trace_id;
      }
    }
  }

  // Items appearing in two or more distinct queries share their slice
  // streams: their single-item transaction vectors are computed once per
  // segment and reused as seeds below.
  std::unordered_map<ItemId, size_t> shared_slot;
  {
    std::unordered_map<ItemId, size_t> query_count;
    for (const Itemset* q : uniques) {
      for (ItemId item : *q) ++query_count[item];
    }
    for (const Itemset* q : uniques) {
      for (ItemId item : *q) {
        if (query_count[item] >= 2) {
          shared_slot.emplace(item, shared_slot.size());
        }
      }
    }
  }
  struct CacheEntry {
    BitVector vec;
    size_t count = 0;
  };
  std::vector<ItemId> shared_items(shared_slot.size());
  for (const auto& [item, slot] : shared_slot) shared_items[slot] = item;
  std::vector<CacheEntry> cache(shared_slot.size() * num_segments);
  pool_.ParallelFor(cache.size(), [&](size_t cell) {
    size_t seg_idx = cell / shared_items.size();
    ItemId item = shared_items[cell % shared_items.size()];
    CacheEntry& entry = cache[cell];
    entry.count =
        snap.segment(seg_idx).CountItemSet({item}, &entry.vec);
  });

  // Per-(query, segment) counts. Each cell is independent; the reduction
  // below runs in segment order so totals match a serial count.
  std::vector<size_t> cell_counts(uniques.size() * num_segments, 0);
  std::vector<uint64_t> cell_words(cell_counts.size(), 0);
  std::atomic<uint64_t> seeded{0};
  pool_.ParallelFor(cell_counts.size(), [&](size_t cell) {
    size_t q_idx = cell / num_segments;
    size_t seg_idx = cell % num_segments;
    const Itemset& query = *uniques[q_idx];
    const BbsIndex& segment = snap.segment(seg_idx);
    const std::string* trace_id = group_trace[q_idx];
    const double cell_ts_us =
        trace_id != nullptr ? tracer_->NowMicros() : 0;
    IoStats io;

    // Seed from the sparsest cached vector the query contains, if any.
    size_t best = SIZE_MAX;
    ItemId best_item = 0;
    for (ItemId item : query) {
      auto it = shared_slot.find(item);
      if (it == shared_slot.end()) continue;
      size_t slot = seg_idx * shared_items.size() + it->second;
      if (best == SIZE_MAX || cache[slot].count < cache[best].count) {
        best = slot;
        best_item = item;
      }
    }
    if (best == SIZE_MAX) {
      cell_counts[cell] = segment.CountItemSet(query, nullptr, &io);
    } else {
      seeded.fetch_add(1, std::memory_order_relaxed);
      if (query.size() == 1) {
        cell_counts[cell] = cache[best].count;
      } else {
        BitVector vec = cache[best].vec;
        size_t count = cache[best].count;
        for (ItemId item : query) {
          if (item == best_item) continue;
          count = segment.AndItemSlices(item, &vec, &io);
        }
        cell_counts[cell] = count;
      }
    }
    cell_words[cell] = io.slice_words_touched;
    if (trace_id != nullptr) {
      std::string args = "\"trace_id\": \"" + obs::JsonEscape(*trace_id) +
                         "\", \"batch\": " + std::to_string(batch_id) +
                         ", \"segment\": " + std::to_string(seg_idx) +
                         ", \"slice_words\": " +
                         std::to_string(io.slice_words_touched);
      tracer_->AddComplete(obs::kTraceSegment, "count.segment", cell_ts_us,
                           tracer_->NowMicros() - cell_ts_us,
                           std::move(args));
    }
  });

  std::vector<uint64_t> totals(uniques.size(), 0);
  std::vector<uint64_t> group_words(uniques.size(), 0);
  for (size_t q = 0; q < uniques.size(); ++q) {
    for (size_t s = 0; s < num_segments; ++s) {
      totals[q] += cell_counts[q * num_segments + s];
      group_words[q] += cell_words[q * num_segments + s];
    }
  }

  CountResult base;
  base.epoch = snap.epoch();
  base.visible_transactions = snap.num_transactions();
  base.batch_size = static_cast<uint32_t>(batch->size());
  base.batch_id = batch_id;
  for (size_t r = 0; r < batch->size(); ++r) {
    CountResult result = base;
    result.count = totals[request_group[r]];
    result.slice_words = group_words[request_group[r]];
    result.queue_wait_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            batch_started_at - (*batch)[r].admitted_at)
            .count());
    (*batch)[r].promise.set_value(result);
  }

  if (tracer_ != nullptr && any_sampled &&
      tracer_->enabled(obs::kTraceBatch)) {
    std::string args = "\"batch\": " + std::to_string(batch_id) +
                       ", \"size\": " + std::to_string(batch->size()) +
                       ", \"uniques\": " + std::to_string(uniques.size()) +
                       ", \"shared_items\": " +
                       std::to_string(shared_items.size()) +
                       ", \"segments\": " + std::to_string(num_segments);
    tracer_->AddComplete(obs::kTraceBatch, "count.batch", batch_ts_us,
                         tracer_->NowMicros() - batch_ts_us,
                         std::move(args));
  }

  if (metrics_ != nullptr) {
    metrics_->Inc(metrics_->batches);
    if (batch->size() > 1) {
      metrics_->Inc(metrics_->batch_fused_requests, batch->size());
    }
    metrics_->Inc(metrics_->shared_seed_queries, seeded.load());
    metrics_->GaugeMax(metrics_->batch_size_peak, batch->size());
    metrics_->ObserveLog2(metrics_->batch_size_hist, batch->size());
  }
}

}  // namespace bbsmine::service
