#include "service/wire.h"

#include <limits>

#include "util/socket.h"

namespace bbsmine::service {

Status WriteFrame(int fd, const obs::JsonValue& message) {
  std::string payload = message.Serialize(/*indent=*/0);
  if (payload.size() > kMaxFrameBytes) {
    return Status::OutOfRange("frame payload exceeds " +
                              std::to_string(kMaxFrameBytes) + " bytes");
  }
  uint32_t length = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>(length >> (8 * i)));
  }
  frame += payload;
  return SendAll(fd, frame);
}

Result<obs::JsonValue> ReadFrame(int fd, int timeout_ms,
                                 int payload_timeout_ms,
                                 uint32_t max_frame_bytes) {
  std::string header;
  BBSMINE_RETURN_IF_ERROR(RecvExact(fd, 4, &header, timeout_ms));
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(header[i]))
              << (8 * i);
  }
  if (length == 0 || length > max_frame_bytes) {
    return Status::Corruption("bad frame length " + std::to_string(length));
  }
  std::string payload;
  Status received = RecvExact(fd, length, &payload, payload_timeout_ms);
  if (!received.ok()) {
    // A timeout mid-frame is a broken peer, not a routine poll timeout.
    if (received.code() == StatusCode::kUnavailable) {
      return Status::IoError("peer stalled mid-frame: " +
                             received.message());
    }
    if (received.code() == StatusCode::kNotFound) {
      return Status::IoError("peer closed mid-frame");
    }
    return received;
  }
  return obs::JsonValue::Parse(payload);
}

obs::JsonValue ErrorResponse(const std::string& verb, const Status& status) {
  obs::JsonValue response = obs::JsonValue::Object();
  response.Set("ok", obs::JsonValue::Bool(false));
  response.Set("verb", obs::JsonValue::String(verb));
  obs::JsonValue error = obs::JsonValue::Object();
  error.Set("code", obs::JsonValue::String(StatusCodeName(status.code())));
  error.Set("message", obs::JsonValue::String(status.message()));
  response.Set("error", std::move(error));
  return response;
}

obs::JsonValue OkResponse(const std::string& verb) {
  obs::JsonValue response = obs::JsonValue::Object();
  response.Set("ok", obs::JsonValue::Bool(true));
  response.Set("verb", obs::JsonValue::String(verb));
  return response;
}

Result<Itemset> ItemsFromJson(const obs::JsonValue& array) {
  if (array.kind() != obs::JsonValue::Kind::kArray) {
    return Status::InvalidArgument("\"items\" must be an array of item ids");
  }
  Itemset items;
  items.reserve(array.size());
  for (size_t i = 0; i < array.size(); ++i) {
    const obs::JsonValue& v = array.at(i);
    if (!v.is_number() || v.AsInt() < 0 ||
        v.AsUint() > std::numeric_limits<ItemId>::max()) {
      return Status::InvalidArgument("\"items\" entries must be item ids");
    }
    items.push_back(static_cast<ItemId>(v.AsUint()));
  }
  Canonicalize(&items);
  return items;
}

obs::JsonValue ItemsToJson(const Itemset& items) {
  obs::JsonValue array = obs::JsonValue::Array();
  for (ItemId item : items) array.Append(obs::JsonValue::Uint(item));
  return array;
}

}  // namespace bbsmine::service
