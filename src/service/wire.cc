#include "service/wire.h"

#include <limits>

#include "util/socket.h"

namespace bbsmine::service {

Status WriteFrame(int fd, const obs::JsonValue& message) {
  std::string payload = message.Serialize(/*indent=*/0);
  if (payload.size() > kMaxFrameBytes) {
    return Status::OutOfRange("frame payload exceeds " +
                              std::to_string(kMaxFrameBytes) + " bytes");
  }
  uint32_t length = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>(length >> (8 * i)));
  }
  frame += payload;
  return SendAll(fd, frame);
}

Result<obs::JsonValue> ReadFrame(int fd, int timeout_ms,
                                 int payload_timeout_ms,
                                 uint32_t max_frame_bytes) {
  std::string header;
  BBSMINE_RETURN_IF_ERROR(RecvExact(fd, 4, &header, timeout_ms));
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(header[i]))
              << (8 * i);
  }
  if (length == 0 || length > max_frame_bytes) {
    return Status::Corruption("bad frame length " + std::to_string(length));
  }
  std::string payload;
  Status received = RecvExact(fd, length, &payload, payload_timeout_ms);
  if (!received.ok()) {
    // A timeout mid-frame is a broken peer, not a routine poll timeout.
    if (received.code() == StatusCode::kUnavailable) {
      return Status::IoError("peer stalled mid-frame: " +
                             received.message());
    }
    if (received.code() == StatusCode::kNotFound) {
      return Status::IoError("peer closed mid-frame");
    }
    return received;
  }
  return obs::JsonValue::Parse(payload);
}

obs::JsonValue ErrorResponse(const std::string& verb, const Status& status) {
  obs::JsonValue response = obs::JsonValue::Object();
  response.Set("ok", obs::JsonValue::Bool(false));
  response.Set("verb", obs::JsonValue::String(verb));
  obs::JsonValue error = obs::JsonValue::Object();
  error.Set("code", obs::JsonValue::String(StatusCodeName(status.code())));
  error.Set("message", obs::JsonValue::String(status.message()));
  response.Set("error", std::move(error));
  return response;
}

obs::JsonValue OkResponse(const std::string& verb) {
  obs::JsonValue response = obs::JsonValue::Object();
  response.Set("ok", obs::JsonValue::Bool(true));
  response.Set("verb", obs::JsonValue::String(verb));
  return response;
}

Result<Itemset> ItemsFromJson(const obs::JsonValue& array) {
  if (array.kind() != obs::JsonValue::Kind::kArray) {
    return Status::InvalidArgument("\"items\" must be an array of item ids");
  }
  Itemset items;
  items.reserve(array.size());
  for (size_t i = 0; i < array.size(); ++i) {
    const obs::JsonValue& v = array.at(i);
    if (!v.is_number() || v.AsInt() < 0 ||
        v.AsUint() > std::numeric_limits<ItemId>::max()) {
      return Status::InvalidArgument("\"items\" entries must be item ids");
    }
    items.push_back(static_cast<ItemId>(v.AsUint()));
  }
  Canonicalize(&items);
  return items;
}

obs::JsonValue ItemsToJson(const Itemset& items) {
  obs::JsonValue array = obs::JsonValue::Array();
  for (ItemId item : items) array.Append(obs::JsonValue::Uint(item));
  return array;
}

std::string BitsToHex(const BitVector& bits) {
  static constexpr char kHexDigits[] = "0123456789abcdef";
  const size_t num_bytes = (bits.size() + 7) / 8;
  std::string hex;
  hex.reserve(num_bytes * 2);
  for (size_t byte = 0; byte < num_bytes; ++byte) {
    uint8_t value = 0;
    for (size_t bit = 0; bit < 8; ++bit) {
      size_t pos = byte * 8 + bit;
      if (pos < bits.size() && bits.Get(pos)) value |= uint8_t{1} << bit;
    }
    hex.push_back(kHexDigits[value >> 4]);
    hex.push_back(kHexDigits[value & 0xf]);
  }
  return hex;
}

Result<BitVector> BitsFromHex(const std::string& hex, size_t num_bits) {
  const size_t num_bytes = (num_bits + 7) / 8;
  if (hex.size() != num_bytes * 2) {
    return Status::InvalidArgument(
        "signature hex length " + std::to_string(hex.size()) +
        " does not match " + std::to_string(num_bits) + " bits");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  BitVector bits(num_bits);
  for (size_t byte = 0; byte < num_bytes; ++byte) {
    int hi = nibble(hex[byte * 2]);
    int lo = nibble(hex[byte * 2 + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("signature is not valid hex");
    }
    uint8_t value = static_cast<uint8_t>((hi << 4) | lo);
    for (size_t bit = 0; bit < 8; ++bit) {
      size_t pos = byte * 8 + bit;
      if (pos >= num_bits) {
        if ((value >> bit) & 1) {
          return Status::InvalidArgument("signature has bits past num_bits");
        }
        continue;
      }
      if ((value >> bit) & 1) bits.Set(pos);
    }
  }
  return bits;
}

}  // namespace bbsmine::service
