#include "service/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crc32.h"
#include "util/fault_injector.h"

namespace bbsmine::service {

namespace {

constexpr char kWalMagic[8] = {'B', 'B', 'S', 'W', 'A', 'L', '0', '1'};
constexpr uint32_t kWalVersion = 1;
// magic + u32 version + u32 crc + u64 base_txn_count.
constexpr uint64_t kWalHeaderBytes = 8 + 4 + 4 + 8;
// Sanity bound on one record: matches the wire-frame cap — no legitimate
// INSERT batch serializes larger, so a bigger length field is bit rot.
constexpr uint32_t kMaxWalRecordBytes = 16u << 20;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::string HeaderBytes(uint64_t base_txn_count) {
  std::string payload;
  AppendU64(&payload, base_txn_count);
  std::string header;
  header.append(kWalMagic, sizeof(kWalMagic));
  AppendU32(&header, kWalVersion);
  AppendU32(&header, Crc32(payload));
  header += payload;
  return header;
}

/// Validates the 24-byte header; fills `base` on success.
Status ParseHeader(const char* data, size_t size, const std::string& path,
                   uint64_t* base) {
  if (size < kWalHeaderBytes) {
    return Status::Corruption("WAL header truncated in " + path);
  }
  if (std::memcmp(data, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption("bad WAL magic in " + path);
  }
  uint32_t version = LoadU32(data + 8);
  if (version != kWalVersion) {
    return Status::Corruption("unsupported WAL version " +
                              std::to_string(version) + " in " + path);
  }
  uint32_t crc = LoadU32(data + 12);
  if (Crc32(data + 16, 8) != crc) {
    return Status::Corruption("WAL header checksum mismatch in " + path);
  }
  *base = LoadU64(data + 16);
  return Status::Ok();
}

std::string SerializeRecord(const std::vector<Itemset>& batch) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(batch.size()));
  for (const Itemset& items : batch) {
    AppendU32(&payload, static_cast<uint32_t>(items.size()));
    for (ItemId item : items) AppendU32(&payload, item);
  }
  std::string record;
  AppendU32(&record, static_cast<uint32_t>(payload.size()));
  AppendU32(&record, Crc32(payload));
  record += payload;
  return record;
}

Status ParseRecordPayload(const char* data, size_t size,
                          const std::string& path,
                          std::vector<Itemset>* out) {
  size_t pos = 0;
  if (size < 4) return Status::Corruption("WAL record too short in " + path);
  uint32_t txn_count = LoadU32(data);
  pos += 4;
  out->clear();
  out->reserve(txn_count);
  for (uint32_t t = 0; t < txn_count; ++t) {
    if (pos + 4 > size) {
      return Status::Corruption("WAL record payload truncated in " + path);
    }
    uint32_t item_count = LoadU32(data + pos);
    pos += 4;
    if (pos + 4ull * item_count > size) {
      return Status::Corruption("WAL record payload truncated in " + path);
    }
    Itemset items(item_count);
    for (uint32_t i = 0; i < item_count; ++i) {
      items[i] = LoadU32(data + pos);
      pos += 4;
    }
    out->push_back(std::move(items));
  }
  if (pos != size) {
    return Status::Corruption("trailing bytes in WAL record in " + path);
  }
  return Status::Ok();
}

Status WriteAllFd(int fd, const char* data, size_t size,
                  const std::string& context) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return StatusFromErrno("write failed: " + context);
    }
    if (n == 0) return Status::IoError("zero-byte write: " + context);
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status ParseFsyncSpec(const std::string& spec, WalOptions* options) {
  if (spec == "always") {
    options->policy = FsyncPolicy::kAlways;
    return Status::Ok();
  }
  if (spec == "none") {
    options->policy = FsyncPolicy::kNone;
    return Status::Ok();
  }
  if (spec.rfind("every=", 0) == 0) {
    uint64_t n = 0;
    for (size_t i = 6; i < spec.size(); ++i) {
      char c = spec[i];
      if (c < '0' || c > '9') {
        n = 0;
        break;
      }
      n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    if (n == 0) {
      return Status::InvalidArgument("--fsync every=N requires N >= 1");
    }
    options->policy = FsyncPolicy::kEveryN;
    options->sync_every = n;
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "--fsync must be always, none, or every=N (got \"" + spec + "\")");
}

std::string FsyncPolicyName(const WalOptions& options) {
  switch (options.policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kEveryN:
      return "every:" + std::to_string(options.sync_every);
  }
  return "unknown";
}

Result<WriteAheadLog> WriteAheadLog::Create(const std::string& path,
                                            uint64_t base_txn_count,
                                            const WalOptions& options) {
  BBSMINE_RETURN_IF_ERROR(FaultInjector::Hit("wal.open"));
  // Header goes to a temp file renamed into place, so a crash during
  // Create/Truncate leaves either the previous log or a complete new one —
  // a WAL file never exists with a partial header.
  const std::string tmp = path + ".tmp";
  int raw = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
  if (raw < 0) {
    return StatusFromErrno("cannot create WAL: " + tmp);
  }
  OwnedFd fd(raw);
  std::string header = HeaderBytes(base_txn_count);
  Status status = WriteAllFd(fd.get(), header.data(), header.size(), tmp);
  if (status.ok() && ::fsync(fd.get()) != 0) {
    status = StatusFromErrno("fsync failed: " + tmp);
  }
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = StatusFromErrno("rename failed: " + tmp + " -> " + path);
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }

  WriteAheadLog wal;
  wal.path_ = path;
  wal.options_ = options;
  wal.fd_ = std::move(fd);  // same inode: the rename moved it under `path`
  wal.base_txn_count_ = base_txn_count;
  wal.offset_ = header.size();
  return wal;
}

Result<WriteAheadLog> WriteAheadLog::OpenForAppend(const std::string& path,
                                                   const WalOptions& options) {
  BBSMINE_RETURN_IF_ERROR(FaultInjector::Hit("wal.open"));
  int raw = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (raw < 0) {
    if (errno == ENOENT) return Status::NotFound("no WAL at " + path);
    return StatusFromErrno("cannot open WAL: " + path);
  }
  OwnedFd fd(raw);
  char header[kWalHeaderBytes];
  ssize_t got = ::pread(fd.get(), header, sizeof(header), 0);
  if (got < 0) return StatusFromErrno("cannot read WAL header: " + path);
  uint64_t base = 0;
  BBSMINE_RETURN_IF_ERROR(
      ParseHeader(header, static_cast<size_t>(got), path, &base));
  off_t end = ::lseek(fd.get(), 0, SEEK_END);
  if (end < 0) return StatusFromErrno("cannot seek WAL: " + path);

  WriteAheadLog wal;
  wal.path_ = path;
  wal.options_ = options;
  wal.fd_ = std::move(fd);
  wal.base_txn_count_ = base;
  wal.offset_ = static_cast<uint64_t>(end);
  return wal;
}

Result<uint64_t> WriteAheadLog::ReadBaseTxnCount(const std::string& path) {
  int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw < 0) {
    if (errno == ENOENT) return Status::NotFound("no WAL at " + path);
    return StatusFromErrno("cannot open WAL: " + path);
  }
  OwnedFd fd(raw);
  char header[kWalHeaderBytes];
  ssize_t got = ::pread(fd.get(), header, sizeof(header), 0);
  if (got < 0) return StatusFromErrno("cannot read WAL header: " + path);
  uint64_t base = 0;
  BBSMINE_RETURN_IF_ERROR(
      ParseHeader(header, static_cast<size_t>(got), path, &base));
  return base;
}

Result<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(const std::vector<Itemset>&)>& apply) {
  int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw < 0) {
    if (errno == ENOENT) return Status::NotFound("no WAL at " + path);
    return StatusFromErrno("cannot open WAL: " + path);
  }
  OwnedFd fd(raw);
  std::string file;
  {
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd.get(), buf, sizeof(buf))) > 0) {
      file.append(buf, static_cast<size_t>(n));
    }
    if (n < 0) return StatusFromErrno("read error: " + path);
  }
  fd.Reset();

  ReplayStats stats;
  BBSMINE_RETURN_IF_ERROR(
      ParseHeader(file.data(), file.size(), path, &stats.base_txn_count));

  size_t pos = kWalHeaderBytes;
  size_t good_end = pos;
  std::vector<Itemset> batch;
  while (pos < file.size()) {
    size_t remaining = file.size() - pos;
    if (remaining < 8) break;  // torn frame header at EOF
    uint32_t len = LoadU32(file.data() + pos);
    uint32_t crc = LoadU32(file.data() + pos + 4);
    if (len > kMaxWalRecordBytes) {
      // No writer produces a record this large; the length field itself is
      // rotten, and everything after it is unreachable. Corruption, not a
      // torn tail — truncating here could drop acknowledged records.
      return Status::Corruption("absurd WAL record length at offset " +
                                std::to_string(pos) + " in " + path);
    }
    if (len > remaining - 8) break;  // record extends past EOF: torn append
    const char* payload = file.data() + pos + 8;
    if (Crc32(payload, static_cast<size_t>(len)) != crc) {
      if (pos + 8 + len == file.size()) break;  // bad final record: torn
      return Status::Corruption("WAL record checksum mismatch at offset " +
                                std::to_string(pos) + " in " + path);
    }
    // CRC-valid but structurally malformed payloads are writer bugs or
    // deliberate tampering, never torn appends: always Corruption.
    BBSMINE_RETURN_IF_ERROR(ParseRecordPayload(payload, len, path, &batch));
    BBSMINE_RETURN_IF_ERROR(apply(batch));
    stats.records += 1;
    stats.transactions += batch.size();
    pos += 8 + len;
    good_end = pos;
  }

  if (good_end < file.size()) {
    stats.torn_tail_bytes = file.size() - good_end;
    stats.tail_truncated = true;
    if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0) {
      return StatusFromErrno("cannot truncate torn WAL tail: " + path);
    }
  }
  return stats;
}

Result<WriteAheadLog::StreamChunk> WriteAheadLog::ReadRecordsFrom(
    const std::string& path, uint64_t from_txn, uint64_t max_bytes,
    StreamCursor* cursor) {
  int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw < 0) {
    if (errno == ENOENT) return Status::NotFound("no WAL at " + path);
    return StatusFromErrno("cannot open WAL: " + path);
  }
  OwnedFd fd(raw);
  struct stat st;
  if (::fstat(fd.get(), &st) != 0) {
    return StatusFromErrno("cannot stat WAL: " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);

  // The header alone decides whether a cached cursor is still valid: a
  // checkpoint Truncate atomically replaces the whole file with a fresh
  // header (new base), which is exactly what invalidates cached offsets.
  char header[kWalHeaderBytes];
  size_t header_read = 0;
  while (header_read < sizeof(header)) {
    ssize_t n = ::read(fd.get(), header + header_read,
                       sizeof(header) - header_read);
    if (n < 0) return StatusFromErrno("read error: " + path);
    if (n == 0) break;
    header_read += static_cast<size_t>(n);
  }
  uint64_t base = 0;
  BBSMINE_RETURN_IF_ERROR(ParseHeader(header, header_read, path, &base));
  if (from_txn < base) {
    return Status::InvalidArgument(
        "replication watermark " + std::to_string(from_txn) +
        " precedes WAL base " + std::to_string(base) + " in " + path +
        " (records already checkpointed away; bootstrap required)");
  }

  // Scan start: right after the header, or — when the caller's cursor
  // matches this file generation and watermark — the cached offset, so a
  // steady-state tail poll reads only bytes appended since the last call.
  uint64_t start = kWalHeaderBytes;
  uint64_t txn = base;  // first transaction of the record at `start`
  if (cursor != nullptr && cursor->base_txn == base &&
      cursor->txn == from_txn && cursor->offset >= kWalHeaderBytes &&
      cursor->offset <= file_size) {
    start = cursor->offset;
    txn = from_txn;
  }
  if (::lseek(fd.get(), static_cast<off_t>(start), SEEK_SET) < 0) {
    return StatusFromErrno("seek error: " + path);
  }
  std::string file;  // log bytes from `start` to EOF
  {
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd.get(), buf, sizeof(buf))) > 0) {
      file.append(buf, static_cast<size_t>(n));
    }
    if (n < 0) return StatusFromErrno("read error: " + path);
  }
  fd.Reset();

  StreamChunk chunk;
  chunk.start_txn = from_txn;
  size_t pos = 0;  // into `file`; absolute offset = start + pos
  // Resume point for the next call: set past the last record shipped, or
  // (when nothing ships) left at the watermark's own record.
  uint64_t next_txn = from_txn;
  uint64_t next_offset = 0;
  std::vector<Itemset> batch;
  while (pos < file.size()) {
    size_t remaining = file.size() - pos;
    if (remaining < 8) break;  // torn frame header: the writer is mid-append
    uint32_t len = LoadU32(file.data() + pos);
    uint32_t crc = LoadU32(file.data() + pos + 4);
    if (len > kMaxWalRecordBytes) {
      return Status::Corruption("absurd WAL record length at offset " +
                                std::to_string(start + pos) + " in " + path);
    }
    if (len > remaining - 8) break;  // record extends past EOF: torn append
    const char* payload = file.data() + pos + 8;
    if (Crc32(payload, static_cast<size_t>(len)) != crc) {
      if (pos + 8 + len == file.size()) break;  // bad final record: torn
      return Status::Corruption("WAL record checksum mismatch at offset " +
                                std::to_string(start + pos) + " in " + path);
    }
    BBSMINE_RETURN_IF_ERROR(ParseRecordPayload(payload, len, path, &batch));
    uint64_t record_end = txn + batch.size();
    if (from_txn > txn && from_txn < record_end) {
      return Status::Corruption(
          "replication watermark " + std::to_string(from_txn) +
          " splits a WAL record covering [" + std::to_string(txn) + ", " +
          std::to_string(record_end) + ") in " + path);
    }
    if (txn >= from_txn) {
      chunk.bytes_remaining += 8 + static_cast<uint64_t>(len);
      // Collect until the byte cap — but never return empty-handed when a
      // record is available: one oversized record must still ship.
      if (chunk.records > 0 && chunk.data.size() + 8 + len > max_bytes) {
        // Past the cap; keep scanning only to learn log_end_txn.
      } else {
        chunk.data.append(file.data() + pos, 8 + static_cast<size_t>(len));
        chunk.records += 1;
        chunk.transactions += batch.size();
        next_txn = record_end;
        next_offset = start + pos + 8 + len;
      }
    }
    txn = record_end;
    pos += 8 + len;
  }
  chunk.log_end_txn = txn;
  if (from_txn > txn) {
    return Status::InvalidArgument(
        "replication watermark " + std::to_string(from_txn) +
        " lies past WAL end " + std::to_string(txn) + " in " + path);
  }
  if (cursor != nullptr) {
    cursor->base_txn = base;
    if (next_offset != 0) {
      cursor->txn = next_txn;
      cursor->offset = next_offset;
    } else {
      // Nothing shipped, so from_txn sits at the end of the valid prefix
      // (anything earlier would have shipped at least one record); the
      // scan stopped exactly there.
      cursor->txn = from_txn;
      cursor->offset = start + pos;
    }
  }
  return chunk;
}

Status WriteAheadLog::DecodeRecords(const std::string& data,
                                    std::vector<std::vector<Itemset>>* batches) {
  batches->clear();
  size_t pos = 0;
  while (pos < data.size()) {
    size_t remaining = data.size() - pos;
    if (remaining < 8) {
      return Status::Corruption("partial WAL record frame in stream chunk");
    }
    uint32_t len = LoadU32(data.data() + pos);
    uint32_t crc = LoadU32(data.data() + pos + 4);
    if (len > kMaxWalRecordBytes) {
      return Status::Corruption("absurd WAL record length in stream chunk");
    }
    if (len > remaining - 8) {
      return Status::Corruption("truncated WAL record in stream chunk");
    }
    const char* payload = data.data() + pos + 8;
    if (Crc32(payload, static_cast<size_t>(len)) != crc) {
      return Status::Corruption("WAL record checksum mismatch in stream chunk");
    }
    std::vector<Itemset> batch;
    BBSMINE_RETURN_IF_ERROR(
        ParseRecordPayload(payload, len, "stream chunk", &batch));
    batches->push_back(std::move(batch));
    pos += 8 + len;
  }
  return Status::Ok();
}

Status WriteAheadLog::Append(const std::vector<Itemset>& batch) {
  if (broken_) {
    return Status::IoError("WAL is broken after a failed append: " + path_);
  }
  std::string record = SerializeRecord(batch);
  size_t allowed = record.size();
  Status injected =
      FaultInjector::HitWrite("wal.append", record.size(), &allowed);
  Status status =
      WriteAllFd(fd_.get(), record.data(), allowed, path_);
  if (status.ok() && !injected.ok()) status = injected;
  if (!status.ok()) {
    // Restore the pre-append length AND the write position — a partial
    // write advanced the fd cursor, and truncation alone would make the
    // next append land past a hole of zeros. If the repair fails the file
    // may hold a partial frame; mark the log broken so no later append
    // writes after garbage. (Recovery would still be correct — the partial
    // frame is a torn tail — but the records after it would be
    // unreachable.)
    if (::ftruncate(fd_.get(), static_cast<off_t>(offset_)) != 0 ||
        ::lseek(fd_.get(), static_cast<off_t>(offset_), SEEK_SET) < 0) {
      broken_ = true;
    }
    return status;
  }
  offset_ += record.size();
  appended_records_ += 1;
  appended_bytes_ += record.size();
  return SyncPerPolicy();
}

Status WriteAheadLog::SyncPerPolicy() {
  switch (options_.policy) {
    case FsyncPolicy::kAlways:
      return Sync();
    case FsyncPolicy::kEveryN:
      if (++appends_since_sync_ >= options_.sync_every) return Sync();
      return Status::Ok();
    case FsyncPolicy::kNone:
      return Status::Ok();
  }
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  BBSMINE_RETURN_IF_ERROR(FaultInjector::Hit("wal.sync"));
  if (::fsync(fd_.get()) != 0) {
    return StatusFromErrno("WAL fsync failed: " + path_);
  }
  appends_since_sync_ = 0;
  ++fsyncs_;
  return Status::Ok();
}

Status WriteAheadLog::Truncate(uint64_t base_txn_count) {
  BBSMINE_RETURN_IF_ERROR(FaultInjector::Hit("wal.truncate"));
  Result<WriteAheadLog> fresh = Create(path_, base_txn_count, options_);
  if (!fresh.ok()) return fresh.status();
  uint64_t total_bytes = appended_bytes_;
  uint64_t total_records = appended_records_;
  uint64_t total_fsyncs = fsyncs_;
  *this = std::move(*fresh);
  // Lifetime counters survive the restart; they feed the service report.
  appended_bytes_ = total_bytes;
  appended_records_ = total_records;
  fsyncs_ = total_fsyncs;
  return Status::Ok();
}

}  // namespace bbsmine::service
