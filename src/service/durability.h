// Checkpoint + WAL orchestration for bbsmined: crash-safe durability with
// bounded recovery time.
//
// Layout under the durable directory (--durable-dir):
//
//   DIR/checkpoint.manifest   SegmentedBbs manifest (epoch-stamped, v2)
//   DIR/checkpoint.seg<N>     one file per index segment
//   DIR/checkpoint.db         transaction database (only when MINE enabled)
//   DIR/wal                   the write-ahead log (service/wal.h)
//
// Write protocol (everything under the service write mutex):
//
//   INSERT      append one WAL record (fsynced per policy) -> apply to the
//               in-memory index/db -> acknowledge.
//   CHECKPOINT  write segment files -> write checkpoint.db -> write the
//               manifest (atomic rename = commit point) -> truncate the WAL
//               to base = checkpointed transaction count.
//
// Recovery (Open) inverts it: load the checkpoint (or adopt the caller's
// bootstrap state when none exists), replay the WAL suffix, truncate a torn
// tail. Because a crash can land between any two checkpoint steps, the
// on-disk index, db, and WAL may each cover a different prefix of the
// insert sequence; every WAL record carries its position (base + cumulative
// count), so replay applies each record only to the stores that have not
// seen it yet. Consistency is verified, not assumed — any state the write
// protocol cannot produce (WAL based past the checkpoint, a gap between
// checkpoint and WAL coverage, a checkpoint boundary splitting a record)
// fails with Corruption instead of guessing.
//
// Thread safety: none; the service serializes LogInsert/Checkpoint under
// its write mutex. Open runs before the service starts.

#ifndef BBSMINE_SERVICE_DURABILITY_H_
#define BBSMINE_SERVICE_DURABILITY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/segmented_bbs.h"
#include "service/snapshot.h"
#include "service/wal.h"
#include "storage/transaction_db.h"

namespace bbsmine::service {

struct DurabilityOptions {
  /// Directory holding checkpoint + WAL. Created if missing.
  std::string dir;
  /// WAL fsync policy (--fsync).
  WalOptions wal;
  /// Auto-checkpoint after this many inserted transactions since the last
  /// checkpoint; 0 disables automatic checkpoints (explicit CHECKPOINT verb
  /// and graceful shutdown still checkpoint).
  uint64_t checkpoint_every = 4096;
};

class DurabilityManager {
 public:
  /// What recovery found; surfaced in the service report and the startup
  /// log line.
  struct RecoveryInfo {
    bool checkpoint_loaded = false;
    uint64_t checkpoint_epoch = 0;
    uint64_t checkpoint_transactions = 0;
    /// Transactions replayed from the WAL into the index beyond the
    /// checkpoint.
    uint64_t recovered_records = 0;
    uint64_t wal_records_scanned = 0;
    uint64_t torn_tail_bytes = 0;
    bool wal_tail_truncated = false;
    double recovery_seconds = 0;
  };

  /// Recovers durable state from `options.dir`. `bootstrap` is the state
  /// the daemon would have started with absent durability (an empty index,
  /// or one loaded via --index): it is used as the base when the directory
  /// holds no checkpoint, and must then match the WAL's base count. `db`
  /// may be null (no MINE); when non-null its contents are replaced by the
  /// checkpointed database (if one exists) and extended by WAL replay.
  /// On success the recovered index is available via TakeRecoveredIndex().
  static Result<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options, SegmentedBbs bootstrap,
      TransactionDatabase* db);

  /// Moves the recovered index out (call exactly once, to seed the
  /// SnapshotManager).
  SegmentedBbs TakeRecoveredIndex() { return std::move(recovered_); }

  const RecoveryInfo& recovery() const { return recovery_; }

  /// Appends one INSERT batch to the WAL; durable per the fsync policy
  /// before returning. Call before applying the batch to the in-memory
  /// state — the WAL must never lag an acknowledged insert.
  Status LogInsert(const std::vector<Itemset>& batch);

  /// True when automatic checkpointing is due.
  bool ShouldCheckpoint() const {
    return options_.checkpoint_every > 0 &&
           txns_since_checkpoint_ >= options_.checkpoint_every;
  }

  /// Persists `snap` (and `db`, when non-null — its size must equal the
  /// snapshot's) as the new checkpoint, then truncates the WAL. The caller
  /// must hold the write mutex so `snap` is the newest state.
  Status Checkpoint(const Snapshot& snap, const TransactionDatabase* db);

  /// fsyncs the WAL regardless of policy (graceful-shutdown path).
  Status SyncWal() { return wal_->Sync(); }

  /// Arms the replication floor: once called, Checkpoint skips the WAL
  /// truncation while any record past the follower's acked watermark is
  /// still in the log — the WAL is the only copy of those records the
  /// follower can fetch, and Truncate (a whole-file restart) would drop
  /// them. Called by the replication source when a follower attaches, not
  /// at startup: a primary with no follower must keep truncating freely.
  void EnableReplicationRetention() {
    repl_retain_.store(true, std::memory_order_relaxed);
  }

  /// Advances the follower's durable watermark (monotonic max). One
  /// watermark means exactly ONE follower: the replication source rejects
  /// a second concurrent WALSTREAM connection, because a faster
  /// follower's acks would release WAL records a lagging follower still
  /// needs (and there is no bootstrap path once they are truncated away).
  void NoteReplicationAck(uint64_t txn) {
    uint64_t seen = repl_acked_txn_.load(std::memory_order_relaxed);
    while (txn > seen && !repl_acked_txn_.compare_exchange_weak(
                             seen, txn, std::memory_order_relaxed)) {
    }
  }

  uint64_t replication_acked_txn() const {
    return repl_acked_txn_.load(std::memory_order_relaxed);
  }
  /// Checkpoints whose WAL truncation was deferred by the floor.
  uint64_t wal_truncations_deferred() const { return wal_retained_; }
  std::string wal_path() const { return WalPath(); }

  // Lifetime counters for the service report.
  uint64_t wal_appends() const { return wal_->appended_records(); }
  uint64_t wal_bytes() const { return wal_->appended_bytes(); }
  uint64_t wal_fsyncs() const { return wal_->fsyncs(); }
  uint64_t checkpoints() const { return checkpoints_; }
  uint64_t txns_since_checkpoint() const { return txns_since_checkpoint_; }
  uint64_t checkpoint_every() const { return options_.checkpoint_every; }
  std::string fsync_policy_name() const {
    return FsyncPolicyName(options_.wal);
  }

 private:
  DurabilityManager(const DurabilityOptions& options, SegmentedBbs recovered)
      : options_(options), recovered_(std::move(recovered)) {}

  /// False while the replication floor still needs WAL records that a
  /// truncation to `covered` would drop.
  bool CanTruncateWal(uint64_t covered) const;

  std::string CheckpointPrefix() const { return options_.dir + "/checkpoint"; }
  std::string DbPath() const { return options_.dir + "/checkpoint.db"; }
  std::string WalPath() const { return options_.dir + "/wal"; }

  DurabilityOptions options_;
  uint64_t capacity_ = 0;  ///< segment capacity; survives TakeRecoveredIndex
  SegmentedBbs recovered_;
  RecoveryInfo recovery_;
  std::unique_ptr<WriteAheadLog> wal_;
  uint64_t checkpoints_ = 0;
  uint64_t txns_since_checkpoint_ = 0;
  /// Replication floor (atomics: the source's stream thread reads/advances
  /// them while Checkpoint runs under the service write mutex).
  std::atomic<bool> repl_retain_{false};
  std::atomic<uint64_t> repl_acked_txn_{0};
  uint64_t wal_retained_ = 0;
};

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_DURABILITY_H_
