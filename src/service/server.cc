#include "service/server.h"

#include <algorithm>
#include <cstdio>
#include <cinttypes>
#include <cstring>
#include <utility>

#include <unistd.h>

#include "baseline/eclat.h"
#include "obs/json.h"
#include "service/replication.h"
#include "service/wire.h"
#include "util/rusage.h"

namespace bbsmine::service {

namespace {

/// Microseconds elapsed since `since` on the steady clock.
uint64_t MicrosSince(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// "epoch" member of an ok response, if present (error responses and MINE
/// have none).
uint64_t EpochOf(const obs::JsonValue& response) {
  if (response.kind() != obs::JsonValue::Kind::kObject ||
      !response.Has("epoch")) {
    return 0;
  }
  const obs::JsonValue& epoch = response.at("epoch");
  return epoch.is_number() ? epoch.AsUint() : 0;
}

/// The id minted for requests the client did not tag: "t<seq>", unique
/// per service instance.
void MintTraceId(uint64_t seq, std::string* out) {
  char minted[24];
  std::snprintf(minted, sizeof(minted), "t%" PRIu64, seq);
  *out = minted;
}

/// Persists the fencing term as a decimal line, atomically (write + rename)
/// so a crash mid-promotion leaves the previous term, never a torn file.
Status PersistTerm(const std::string& path, uint64_t term) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return StatusFromErrno("cannot write term file: " + tmp);
  const std::string line = std::to_string(term) + "\n";
  bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("cannot persist term file: " + path);
  }
  return Status::Ok();
}

}  // namespace

const char* ServiceRoleName(ServiceRole role) {
  switch (role) {
    case ServiceRole::kStandalone:
      return "standalone";
    case ServiceRole::kPrimary:
      return "primary";
    case ServiceRole::kFollower:
      return "follower";
  }
  return "unknown";
}

BbsService::BbsService(SnapshotManager* index, TransactionDatabase* db,
                       const ServiceOptions& options)
    : index_(index),
      db_(db),
      durability_(options.durability),
      options_(options),
      metrics_(options.stats_windows),
      scheduler_(index, options.scheduler, &metrics_, options.tracer),
      role_(static_cast<int>(options.role)),
      term_(options.term),
      start_(std::chrono::steady_clock::now()) {}

uint64_t BbsService::NowRelMicros() const { return MicrosSince(start_); }

obs::JsonValue BbsService::Handle(const obs::JsonValue& request,
                                  const RequestContext& ctx) {
  metrics_.Inc(metrics_.requests_total);
  const uint64_t start_rel_us = NowRelMicros();
  metrics_.MaybeRotateWindows(start_rel_us);
  if (request.kind() != obs::JsonValue::Kind::kObject ||
      !request.Has("verb") ||
      request.at("verb").kind() != obs::JsonValue::Kind::kString) {
    metrics_.Inc(metrics_.errors);
    return ErrorResponse(
        "", Status::InvalidArgument("request must be an object with a "
                                    "string \"verb\" member"));
  }
  const std::string& verb = request.at("verb").AsString();

  // Request identity: honor a client-supplied trace_id; otherwise mint one
  // when some sink (tracer, slow log, flight ring) will use it.
  const uint64_t seq = request_seq_.fetch_add(1, std::memory_order_relaxed);
  obs::Tracer* tracer = options_.tracer;
  const bool sampled = tracer != nullptr && options_.trace_sample > 0 &&
                       seq % options_.trace_sample == 0;
  std::string trace_id;
  if (request.Has("trace_id") &&
      request.at("trace_id").kind() == obs::JsonValue::Kind::kString) {
    trace_id = request.at("trace_id").AsString();
  } else if (sampled) {
    // Minting is deliberately lazy: only a sink that actually records the
    // id pays for it (here, and again below if the request turns out
    // slow). Flight events with no id stay unattributed — the dump's
    // connection + seq already identifies them, and there is no trace or
    // slow-log line to correlate with.
    MintTraceId(seq, &trace_id);
  }
  if (sampled) metrics_.Inc(metrics_.traced_requests);

  const auto begin = std::chrono::steady_clock::now();
  const double span_ts_us = sampled ? tracer->NowMicros() : 0;
  CountResult count_result;
  bool counted = false;
  obs::JsonValue response;
  size_t latency_slot;
  if (verb == "PING") {
    latency_slot = metrics_.latency_ping;
    metrics_.Inc(metrics_.requests_ping);
    response = HandlePing();
  } else if (verb == "COUNT") {
    latency_slot = metrics_.latency_count;
    metrics_.Inc(metrics_.requests_count);
    CountObs count_obs;
    count_obs.trace_id = trace_id;
    count_obs.sampled = sampled;
    response = HandleCount(request, count_obs, &count_result, &counted);
  } else if (verb == "INSERT") {
    latency_slot = metrics_.latency_insert;
    metrics_.Inc(metrics_.requests_insert);
    response = HandleInsert(request);
  } else if (verb == "MINE") {
    latency_slot = metrics_.latency_mine;
    metrics_.Inc(metrics_.requests_mine);
    response = HandleMine(request);
  } else if (verb == "STATS") {
    latency_slot = metrics_.latency_stats;
    metrics_.Inc(metrics_.requests_stats);
    response = HandleStats();
  } else if (verb == "CHECKPOINT") {
    latency_slot = metrics_.latency_checkpoint;
    metrics_.Inc(metrics_.requests_checkpoint);
    response = HandleCheckpoint();
  } else if (verb == "DUMP") {
    latency_slot = metrics_.latency_dump;
    metrics_.Inc(metrics_.requests_dump);
    response = HandleDump();
  } else if (verb == "SHARDINFO") {
    latency_slot = metrics_.latency_shardinfo;
    metrics_.Inc(metrics_.requests_shardinfo);
    response = HandleShardInfo();
  } else if (verb == "PROMOTE") {
    latency_slot = metrics_.latency_promote;
    metrics_.Inc(metrics_.requests_promote);
    response = HandlePromote(request);
  } else if (verb == "WALSTREAM") {
    // Reached only when the transport did not upgrade the connection —
    // i.e. this daemon has no replication source to stream from.
    metrics_.Inc(metrics_.errors);
    return ErrorResponse(
        verb, Status::InvalidArgument(
                  "WALSTREAM requires a durable primary (--durable-dir)"));
  } else {
    metrics_.Inc(metrics_.errors);
    return ErrorResponse(
        verb, Status::InvalidArgument("unknown verb: " + verb));
  }
  const uint64_t latency_us = MicrosSince(begin);
  metrics_.ObserveLog2(latency_slot, latency_us);
  const bool ok = response.at("ok").AsBool();
  if (!ok) metrics_.Inc(metrics_.errors);

  if (sampled && tracer->enabled(obs::kTraceRequest)) {
    std::string args = "\"trace_id\": \"" + obs::JsonEscape(trace_id) +
                       "\", \"verb\": \"" + verb + "\"";
    if (counted) {
      args += ", \"batch\": " + std::to_string(count_result.batch_id);
    }
    tracer->AddComplete(obs::kTraceRequest, "request", span_ts_us,
                        tracer->NowMicros() - span_ts_us, std::move(args));
  }

  // Promotions always land in the slow log regardless of latency:
  // failovers are rare, operationally significant, and exactly what the
  // log's forensic tail exists for.
  const bool promotion_event = ok && verb == "PROMOTE";
  if (options_.slow_log != nullptr &&
      (latency_us >= options_.slow_query_us || promotion_event)) {
    if (latency_us >= options_.slow_query_us) {
      metrics_.Inc(metrics_.slow_queries);
    }
    if (trace_id.empty()) MintTraceId(seq, &trace_id);
    SlowQueryRecord record;
    record.at_rel_us = start_rel_us;
    record.trace_id = trace_id;
    record.verb = verb;
    record.latency_us = latency_us;
    record.queue_wait_us = counted ? count_result.queue_wait_us : 0;
    record.batch_size = counted ? count_result.batch_size : 0;
    if (request.Has("items") &&
        request.at("items").kind() == obs::JsonValue::Kind::kArray) {
      record.items = request.at("items").size();
    }
    record.epoch = EpochOf(response);
    record.slice_words = counted ? count_result.slice_words : 0;
    record.backend = IndexBackendName(options_.index_backend);
    record.ok = ok;
    options_.slow_log->Append(record);
  }

  if (ctx.flight != nullptr) {
    FlightEvent event;
    event.start_rel_us = start_rel_us;
    event.latency_us = latency_us;
    event.queue_wait_us = counted ? count_result.queue_wait_us : 0;
    event.epoch = counted ? count_result.epoch : EpochOf(response);
    event.batch_size = counted ? count_result.batch_size : 0;
    event.verb = RecordedVerbFromString(verb);
    event.ok = ok;
    std::strncpy(event.trace_id, trace_id.c_str(),
                 FlightEvent::kTraceIdBytes - 1);
    ctx.flight->Record(event);
  }
  return response;
}

obs::JsonValue BbsService::HandlePing() {
  obs::JsonValue response = OkResponse("PING");
  response.Set("epoch", obs::JsonValue::Uint(index_->epoch()));
  return response;
}

obs::JsonValue BbsService::HandleCount(const obs::JsonValue& request,
                                       const CountObs& count_obs,
                                       CountResult* out, bool* counted) {
  Result<Itemset> items = ItemsFromJson(request.at("items"));
  if (!items.ok()) return ErrorResponse("COUNT", items.status());
  Status status = scheduler_.Count(*items, count_obs, out);
  if (!status.ok()) return ErrorResponse("COUNT", status);
  *counted = true;
  obs::JsonValue response = OkResponse("COUNT");
  response.Set("items", ItemsToJson(*items));
  response.Set("count", obs::JsonValue::Uint(out->count));
  response.Set("epoch", obs::JsonValue::Uint(out->epoch));
  response.Set("visible_transactions",
               obs::JsonValue::Uint(out->visible_transactions));
  response.Set("batch_size", obs::JsonValue::Uint(out->batch_size));
  response.Set("queue_wait_us", obs::JsonValue::Uint(out->queue_wait_us));
  return response;
}

obs::JsonValue BbsService::HandleInsert(const obs::JsonValue& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse("INSERT",
                         Status::Unavailable("service is draining"));
  }
  if (role() == ServiceRole::kFollower) {
    // A follower's writes arrive only over the replication stream; a
    // client INSERT here would fork its history from the primary's.
    return ErrorResponse(
        "INSERT", Status::InvalidArgument(
                      "this daemon is a read-only follower (of " +
                      (options_.follower != nullptr
                           ? options_.follower->primary_endpoint()
                           : std::string("a primary")) +
                      "); it accepts INSERT only after PROMOTE"));
  }
  // Accept either one transaction ("items") or several ("transactions").
  std::vector<Itemset> batch;
  if (request.Has("transactions")) {
    const obs::JsonValue& txns = request.at("transactions");
    if (txns.kind() != obs::JsonValue::Kind::kArray) {
      return ErrorResponse("INSERT", Status::InvalidArgument(
                                         "\"transactions\" must be an array "
                                         "of item arrays"));
    }
    batch.reserve(txns.size());
    for (size_t i = 0; i < txns.size(); ++i) {
      Result<Itemset> items = ItemsFromJson(txns.at(i));
      if (!items.ok()) return ErrorResponse("INSERT", items.status());
      batch.push_back(std::move(*items));
    }
  } else {
    Result<Itemset> items = ItemsFromJson(request.at("items"));
    if (!items.ok()) return ErrorResponse("INSERT", items.status());
    batch.push_back(std::move(*items));
  }
  if (batch.empty()) {
    return ErrorResponse(
        "INSERT", Status::InvalidArgument("no transactions to insert"));
  }
  uint64_t epoch;
  uint64_t transactions;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (durability_ != nullptr) {
      // WAL first: the batch must be durable (per the fsync policy) before
      // it can become visible or acknowledged. A failed append leaves the
      // WAL truncated back to its pre-batch length, so nothing is applied
      // and the client may safely retry.
      Status logged = durability_->LogInsert(batch);
      if (!logged.ok()) return ErrorResponse("INSERT", logged);
    }
    for (const Itemset& items : batch) {
      Status inserted = index_->Insert(items);
      if (!inserted.ok()) return ErrorResponse("INSERT", inserted);
      if (db_ != nullptr) db_->Append(items);
    }
    // Fold cold sealed segments before the checkpoint below so a triggered
    // checkpoint persists the compacted generation.
    size_t compacted = index_->CompactColdSegments(options_.compaction);
    if (compacted > 0) {
      metrics_.Inc(metrics_.compacted_segments, compacted);
    }
    epoch = index_->epoch();
    transactions = index_->num_transactions();
    if (durability_ != nullptr && durability_->ShouldCheckpoint()) {
      // The batch is already durable in the WAL, so a failed automatic
      // checkpoint must not fail the insert; it just leaves more WAL to
      // replay. Surface it and move on.
      Status checkpointed = durability_->Checkpoint(index_->Acquire(), db_);
      if (!checkpointed.ok()) {
        std::fprintf(stderr, "bbsmined: automatic checkpoint failed: %s\n",
                     checkpointed.ToString().c_str());
      }
    }
  }
  metrics_.Inc(metrics_.inserted_transactions, batch.size());
  obs::JsonValue response = OkResponse("INSERT");
  response.Set("inserted", obs::JsonValue::Uint(batch.size()));
  response.Set("epoch", obs::JsonValue::Uint(epoch));
  response.Set("transactions", obs::JsonValue::Uint(transactions));
  if (options_.replication != nullptr && options_.repl_ack) {
    // Semi-sync: hold the ack (outside the write mutex — later INSERTs
    // keep flowing) until the follower durably has this batch. On timeout
    // the write is still acknowledged, flagged unreplicated — degrading
    // one response beats wedging the write path on a dead follower.
    const bool replicated = options_.replication->WaitForAck(
        transactions, options_.repl_ack_timeout_ms);
    if (!replicated) options_.replication->NoteAckTimeout();
    response.Set("replicated", obs::JsonValue::Bool(replicated));
  }
  return response;
}

obs::JsonValue BbsService::HandleMine(const obs::JsonValue& request) {
  if (db_ == nullptr) {
    return ErrorResponse(
        "MINE", Status::InvalidArgument(
                    "MINE requires the daemon to be started with --db"));
  }
  if (request.Has("candidates")) return HandleMineCandidates(request);
  EclatConfig config;
  config.min_support = options_.default_min_support;
  if (request.Has("minsup")) {
    const obs::JsonValue& minsup = request.at("minsup");
    if (!minsup.is_number() || minsup.AsDouble() <= 0 ||
        minsup.AsDouble() > 1) {
      return ErrorResponse("MINE", Status::InvalidArgument(
                                       "\"minsup\" must be in (0, 1]"));
    }
    config.min_support = minsup.AsDouble();
  }
  size_t top = options_.mine_top;
  if (request.Has("top")) {
    const obs::JsonValue& requested = request.at("top");
    if (!requested.is_number() || requested.AsInt() < 1) {
      return ErrorResponse(
          "MINE", Status::InvalidArgument("\"top\" must be a positive int"));
    }
    top = static_cast<size_t>(requested.AsUint());
  }
  MiningResult result;
  size_t mined_over;
  {
    // Under write_mu_ so the database does not grow mid-scan; COUNTs keep
    // flowing against published snapshots the whole time.
    std::lock_guard<std::mutex> lock(write_mu_);
    mined_over = db_->size();
    result = MineEclat(*db_, config);
  }
  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.items < b.items;
            });
  size_t total_frequent = result.patterns.size();
  if (result.patterns.size() > top) result.patterns.resize(top);
  obs::JsonValue patterns = obs::JsonValue::Array();
  for (const Pattern& pattern : result.patterns) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("items", ItemsToJson(pattern.items));
    entry.Set("support", obs::JsonValue::Uint(pattern.support));
    patterns.Append(std::move(entry));
  }
  obs::JsonValue response = OkResponse("MINE");
  response.Set("min_support", obs::JsonValue::Double(config.min_support));
  response.Set("transactions", obs::JsonValue::Uint(mined_over));
  response.Set("total_frequent", obs::JsonValue::Uint(total_frequent));
  response.Set("patterns", std::move(patterns));
  return response;
}

obs::JsonValue BbsService::HandleMineCandidates(const obs::JsonValue& request) {
  // The second round of the router's global-τ exchange: exact supports for
  // an explicit candidate list, no local mining. Counting scans the
  // database (not the Bloom index) so the supports are exact — the router
  // merges them with round-1 supports into a globally bit-identical answer.
  const obs::JsonValue& array = request.at("candidates");
  if (array.kind() != obs::JsonValue::Kind::kArray) {
    return ErrorResponse("MINE", Status::InvalidArgument(
                                     "\"candidates\" must be an array of "
                                     "item arrays"));
  }
  std::vector<Itemset> candidates;
  candidates.reserve(array.size());
  for (size_t i = 0; i < array.size(); ++i) {
    Result<Itemset> items = ItemsFromJson(array.at(i));
    if (!items.ok()) return ErrorResponse("MINE", items.status());
    candidates.push_back(std::move(*items));
  }
  std::vector<uint64_t> supports(candidates.size(), 0);
  size_t counted_over;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    counted_over = db_->size();
  }
  // The O(transactions x candidates) scan is chunked so write_mu_ is
  // released between chunks and INSERTs interleave instead of stalling
  // for the whole pass (a stall past the router's fan-out deadline would
  // read as a dead shard). The database is append-only, so the fixed
  // prefix [0, counted_over) stays a consistent snapshot however many
  // INSERTs land mid-scan — supports and the reported transaction total
  // describe exactly that prefix.
  constexpr size_t kChunkSubsetChecks = 65536;
  const size_t per_chunk = std::max<size_t>(
      1, kChunkSubsetChecks / std::max<size_t>(1, candidates.size()));
  for (size_t begin = 0; begin < counted_over; begin += per_chunk) {
    const size_t end = std::min(begin + per_chunk, counted_over);
    std::lock_guard<std::mutex> lock(write_mu_);
    for (size_t t = begin; t < end; ++t) {
      const Itemset& txn = db_->At(t).items;
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (std::includes(txn.begin(), txn.end(), candidates[c].begin(),
                          candidates[c].end())) {
          ++supports[c];
        }
      }
    }
  }
  obs::JsonValue supports_json = obs::JsonValue::Array();
  for (uint64_t support : supports) {
    supports_json.Append(obs::JsonValue::Uint(support));
  }
  obs::JsonValue response = OkResponse("MINE");
  response.Set("transactions", obs::JsonValue::Uint(counted_over));
  response.Set("candidates", obs::JsonValue::Uint(candidates.size()));
  response.Set("supports", std::move(supports_json));
  return response;
}

obs::JsonValue BbsService::HandleShardInfo() {
  // The shard's routing signature: the OR-fold of its segment signature
  // columns — bit p is set iff any segment has a non-empty slice p. A
  // folded (compacted) segment stores slice p%f for full-width position p,
  // so its fold is expanded back to full width; that can only over-set
  // bits, which keeps router pruning conservative (never wrong, possibly
  // less effective on folded shards).
  Snapshot snap = index_->Acquire();
  const BbsConfig& config = snap.config();
  BitVector signature(config.num_bits);
  for (size_t s = 0; s < snap.num_segments(); ++s) {
    const BbsIndex& segment = snap.segment(s);
    const uint32_t width = segment.num_bits();
    for (uint32_t pos = 0; pos < config.num_bits; ++pos) {
      if (!signature.Get(pos) && segment.SlicePopcount(pos % width) > 0) {
        signature.Set(pos);
      }
    }
  }
  obs::JsonValue config_json = obs::JsonValue::Object();
  config_json.Set("bits", obs::JsonValue::Uint(config.num_bits));
  config_json.Set("hashes", obs::JsonValue::Uint(config.num_hashes));
  config_json.Set("hash_kind",
                  obs::JsonValue::Uint(static_cast<uint64_t>(config.hash_kind)));
  config_json.Set("seed", obs::JsonValue::Uint(config.seed));
  obs::JsonValue response = OkResponse("SHARDINFO");
  response.Set("epoch", obs::JsonValue::Uint(snap.epoch()));
  response.Set("transactions", obs::JsonValue::Uint(snap.num_transactions()));
  response.Set("segments", obs::JsonValue::Uint(snap.num_segments()));
  response.Set("mine_enabled", obs::JsonValue::Bool(db_ != nullptr));
  response.Set("role", obs::JsonValue::String(ServiceRoleName(role())));
  response.Set("term", obs::JsonValue::Uint(term()));
  response.Set("config", std::move(config_json));
  response.Set("signature_bits", obs::JsonValue::Uint(config.num_bits));
  response.Set("signature", obs::JsonValue::String(BitsToHex(signature)));
  return response;
}

obs::JsonValue BbsService::HandleCheckpoint() {
  if (durability_ == nullptr) {
    return ErrorResponse(
        "CHECKPOINT",
        Status::InvalidArgument(
            "CHECKPOINT requires the daemon to be started with "
            "--durable-dir"));
  }
  uint64_t epoch;
  uint64_t transactions;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    Snapshot snap = index_->Acquire();
    epoch = snap.epoch();
    transactions = snap.num_transactions();
    Status checkpointed = durability_->Checkpoint(snap, db_);
    if (!checkpointed.ok()) return ErrorResponse("CHECKPOINT", checkpointed);
  }
  obs::JsonValue response = OkResponse("CHECKPOINT");
  response.Set("epoch", obs::JsonValue::Uint(epoch));
  response.Set("transactions", obs::JsonValue::Uint(transactions));
  response.Set("checkpoints", obs::JsonValue::Uint(durability_->checkpoints()));
  return response;
}

obs::JsonValue BbsService::HandlePromote(const obs::JsonValue& request) {
  if (!request.Has("term") || !request.at("term").is_number()) {
    return ErrorResponse(
        "PROMOTE",
        Status::InvalidArgument("PROMOTE requires a numeric \"term\""));
  }
  const uint64_t new_term = request.at("term").AsUint();
  bool promoted = false;
  uint64_t transactions;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    const uint64_t current = term();
    if (new_term < current) {
      // Fencing: a router working from a newer shard map has already moved
      // the shard past this term; whoever sent this is stale.
      return ErrorResponse(
          "PROMOTE",
          Status::InvalidArgument(
              "stale term " + std::to_string(new_term) +
              " (this node is at term " + std::to_string(current) + ")"));
    }
    // new_term == current re-promotes idempotently (a retried PROMOTE
    // after a dropped response must not fail the failover).
    if (!options_.term_file.empty()) {
      Status persisted = PersistTerm(options_.term_file, new_term);
      if (!persisted.ok()) return ErrorResponse("PROMOTE", persisted);
    }
    term_.store(new_term, std::memory_order_relaxed);
    promoted = role() != ServiceRole::kPrimary;
    role_.store(static_cast<int>(ServiceRole::kPrimary),
                std::memory_order_relaxed);
    transactions = index_->num_transactions();
  }
  if (promoted) {
    promotions_.fetch_add(1, std::memory_order_relaxed);
    if (options_.on_promote) options_.on_promote();
    std::fprintf(stderr,
                 "bbsmined: promoted to primary at term %llu "
                 "(%llu transactions)\n",
                 static_cast<unsigned long long>(new_term),
                 static_cast<unsigned long long>(transactions));
  }
  obs::JsonValue response = OkResponse("PROMOTE");
  response.Set("role", obs::JsonValue::String(ServiceRoleName(role())));
  response.Set("term", obs::JsonValue::Uint(term()));
  response.Set("transactions", obs::JsonValue::Uint(transactions));
  response.Set("promoted", obs::JsonValue::Bool(promoted));
  return response;
}

bool BbsService::IsStreamingVerb(const std::string& verb) const {
  return verb == "WALSTREAM" && options_.replication != nullptr &&
         durability_ != nullptr;
}

void BbsService::ServeStream(const obs::JsonValue& request, int fd,
                             const std::atomic<bool>& stop) {
  options_.replication->Serve(request, fd, stop);
}

Status BbsService::ApplyReplicated(
    const std::vector<std::vector<Itemset>>& batches) {
  std::lock_guard<std::mutex> lock(write_mu_);
  uint64_t applied = 0;
  for (const std::vector<Itemset>& batch : batches) {
    // Identical to the INSERT path: WAL first (the follower's own log —
    // its durability story is the primary's, re-proven locally), then the
    // index and database.
    if (durability_ != nullptr) {
      BBSMINE_RETURN_IF_ERROR(durability_->LogInsert(batch));
    }
    for (const Itemset& items : batch) {
      BBSMINE_RETURN_IF_ERROR(index_->Insert(items));
      if (db_ != nullptr) db_->Append(items);
    }
    applied += batch.size();
  }
  size_t compacted = index_->CompactColdSegments(options_.compaction);
  if (compacted > 0) metrics_.Inc(metrics_.compacted_segments, compacted);
  if (durability_ != nullptr && durability_->ShouldCheckpoint()) {
    Status checkpointed = durability_->Checkpoint(index_->Acquire(), db_);
    if (!checkpointed.ok()) {
      std::fprintf(stderr, "bbsmined: automatic checkpoint failed: %s\n",
                   checkpointed.ToString().c_str());
    }
  }
  metrics_.Inc(metrics_.inserted_transactions, applied);
  return Status::Ok();
}

obs::JsonValue BbsService::HandleStats() {
  obs::JsonValue response = OkResponse("STATS");
  response.Set("report", BuildStatsReport());
  return response;
}

obs::JsonValue BbsService::HandleDump() {
  if (options_.flight_recorder == nullptr) {
    return ErrorResponse(
        "DUMP", Status::InvalidArgument(
                    "DUMP requires the daemon's flight recorder (started "
                    "with --flight-recorder-size > 0)"));
  }
  obs::JsonValue response = OkResponse("DUMP");
  response.Set("flight",
               options_.flight_recorder->DumpJson(NowRelMicros()));
  return response;
}

obs::JsonValue BbsService::BuildReplicationSection() const {
  if (options_.replication == nullptr && options_.follower == nullptr &&
      role() == ServiceRole::kStandalone) {
    return obs::JsonValue();  // null: report renders {"enabled": false}
  }
  obs::JsonValue section = obs::JsonValue::Object();
  section.Set("enabled", obs::JsonValue::Bool(true));
  section.Set("role", obs::JsonValue::String(ServiceRoleName(role())));
  section.Set("term", obs::JsonValue::Uint(term()));
  section.Set("promotions",
              obs::JsonValue::Uint(promotions_.load(std::memory_order_relaxed)));
  if (options_.replication != nullptr) {
    const ReplicationSource::Stats stats = options_.replication->stats();
    const uint64_t applied = index_->num_transactions();
    section.Set("semi_sync", obs::JsonValue::Bool(options_.repl_ack));
    section.Set("followers", obs::JsonValue::Uint(stats.followers));
    section.Set("last_acked_txn", obs::JsonValue::Uint(stats.last_acked_txn));
    section.Set("lag_records",
                obs::JsonValue::Uint(applied > stats.last_acked_txn
                                         ? applied - stats.last_acked_txn
                                         : 0));
    section.Set("lag_bytes", obs::JsonValue::Uint(stats.lag_bytes));
    section.Set("records_shipped",
                obs::JsonValue::Uint(stats.records_shipped));
    section.Set("bytes_shipped", obs::JsonValue::Uint(stats.bytes_shipped));
    section.Set("ack_timeouts", obs::JsonValue::Uint(stats.ack_timeouts));
  }
  if (options_.follower != nullptr) {
    const ReplicationFollower::Stats stats = options_.follower->stats();
    const uint64_t applied = index_->num_transactions();
    section.Set("primary",
                obs::JsonValue::String(options_.follower->primary_endpoint()));
    section.Set("connected", obs::JsonValue::Bool(stats.connected));
    section.Set("last_applied_txn", obs::JsonValue::Uint(applied));
    section.Set("lag_records",
                obs::JsonValue::Uint(stats.primary_end_txn > applied
                                         ? stats.primary_end_txn - applied
                                         : 0));
    section.Set("records_applied",
                obs::JsonValue::Uint(stats.records_applied));
    section.Set("crc_rejects", obs::JsonValue::Uint(stats.crc_rejects));
    section.Set("reconnects", obs::JsonValue::Uint(stats.reconnects));
  }
  return section;
}

obs::JsonValue BbsService::BuildStatsReport() const {
  Snapshot snap = index_->Acquire();
  ServiceReportContext ctx;
  ctx.uptime_seconds =
      static_cast<double>(MicrosSince(start_)) / 1e6;
  ctx.epoch = snap.epoch();
  ctx.transactions = snap.num_transactions();
  ctx.segments = snap.num_segments();
  ctx.snapshot_publications = index_->publications();
  ctx.snapshot_seals = index_->seals();
  ctx.segment_capacity = index_->segment_capacity();
  ctx.draining = draining_.load(std::memory_order_relaxed);
  ctx.mine_enabled = db_ != nullptr;
  ctx.index_backend = IndexBackendName(options_.index_backend);
  ctx.resident_slice_bytes = snap.ApproxResidentBytes();
  const PageFaultCounters faults = CurrentPageFaults();
  ctx.minor_faults = faults.minor;
  ctx.major_faults = faults.major;
  ctx.compaction_enabled = options_.compaction.enabled();
  ctx.compact_cold_epochs = options_.compaction.cold_epochs;
  ctx.compact_fold_bits = options_.compaction.fold_bits;
  ctx.compacted_segments = index_->compactions();
  ctx.pending_requests = scheduler_.pending();
  if (const std::atomic<uint64_t>* live =
          live_connections_.load(std::memory_order_acquire);
      live != nullptr) {
    ctx.open_connections = live->load(std::memory_order_relaxed);
  }
  ctx.window_now_us = MicrosSince(start_);
  metrics_.MaybeRotateWindows(ctx.window_now_us);
  if (durability_ != nullptr) {
    std::lock_guard<std::mutex> lock(write_mu_);
    ctx.durable = true;
    ctx.fsync_policy = durability_->fsync_policy_name();
    ctx.checkpoint_every = durability_->checkpoint_every();
    ctx.wal_appends = durability_->wal_appends();
    ctx.wal_bytes = durability_->wal_bytes();
    ctx.wal_fsyncs = durability_->wal_fsyncs();
    ctx.checkpoints = durability_->checkpoints();
    ctx.wal_txns_since_checkpoint = durability_->txns_since_checkpoint();
    ctx.wal_truncations_deferred = durability_->wal_truncations_deferred();
    const DurabilityManager::RecoveryInfo& recovery = durability_->recovery();
    ctx.checkpoint_loaded = recovery.checkpoint_loaded;
    ctx.recovered_records = recovery.recovered_records;
    ctx.torn_tail_bytes = recovery.torn_tail_bytes;
    ctx.recovery_seconds = recovery.recovery_seconds;
  }
  ctx.replication = BuildReplicationSection();
  return BuildServiceReport(ctx, metrics_);
}

void BbsService::Drain() {
  draining_.store(true, std::memory_order_relaxed);
  scheduler_.Shutdown();
}

SocketServer::SocketServer(RequestHandler* service,
                           const SocketServerOptions& options)
    : service_(service), options_(options) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  Result<OwnedFd> listener =
      ListenTcp(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  Result<uint16_t> port = BoundPort(listener->get());
  if (!port.ok()) return port.status();
  listener_ = std::move(*listener);
  port_ = *port;
  service_->AttachConnectionCounter(&open_connections_);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<OwnedFd> accepted =
        AcceptWithTimeout(listener_.get(), options_.poll_interval_ms);
    if (!accepted.ok()) {
      if (stop_.load(std::memory_order_acquire)) return;
      continue;  // transient accept failure; keep serving
    }
    if (!accepted->valid()) continue;  // poll timeout: re-check stop flag
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    auto conn = std::make_unique<Connection>();
    Connection* slot = conn.get();
    uint64_t open = open_connections_.fetch_add(1) + 1;
    service_->metrics().GaugeMax(service_->metrics().active_connections,
                                 open);
    uint64_t connection_id = next_connection_id_.fetch_add(1) + 1;
    slot->thread = std::thread(
        [this, fd = std::move(*accepted), slot, connection_id]() mutable {
          ServeConnection(std::move(fd), slot, connection_id);
        });
    connections_.push_back(std::move(conn));
  }
}

void SocketServer::ServeConnection(OwnedFd fd, Connection* slot,
                                   uint64_t connection_id) {
  RequestContext ctx;
  ctx.connection_id = connection_id;
  FlightRecorder* recorder = service_->flight_recorder();
  if (recorder != nullptr) ctx.flight = recorder->AcquireRing(connection_id);
  while (!stop_.load(std::memory_order_acquire)) {
    Result<obs::JsonValue> request =
        ReadFrame(fd.get(), options_.poll_interval_ms);
    if (!request.ok()) {
      if (request.status().code() == StatusCode::kUnavailable) {
        continue;  // idle poll timeout: re-check the stop flag
      }
      if (request.status().code() != StatusCode::kNotFound) {
        // Best effort: tell the peer what went wrong before closing.
        (void)WriteFrame(fd.get(), ErrorResponse("", request.status()));
      }
      break;  // clean disconnect or broken transport either way
    }
    if (request->kind() == obs::JsonValue::Kind::kObject &&
        request->Has("verb") &&
        request->at("verb").kind() == obs::JsonValue::Kind::kString &&
        service_->IsStreamingVerb(request->at("verb").AsString())) {
      // The stream owns the connection from here: it writes its own
      // frames until stop/disconnect, and the socket closes afterwards
      // (a stream cannot fall back to request/response).
      service_->ServeStream(*request, fd.get(), stop_);
      break;
    }
    obs::JsonValue response = service_->Handle(*request, ctx);
    if (!WriteFrame(fd.get(), response).ok()) break;
  }
  fd.Reset();
  if (recorder != nullptr) recorder->ReleaseRing(ctx.flight);
  open_connections_.fetch_sub(1);
  slot->done.store(true, std::memory_order_release);
}

void SocketServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  listener_.Reset();
}

}  // namespace bbsmine::service
