#include "service/server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "baseline/eclat.h"
#include "service/wire.h"
#include "util/rusage.h"

namespace bbsmine::service {

namespace {

/// Microseconds elapsed since `since` on the steady clock.
uint64_t MicrosSince(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

BbsService::BbsService(SnapshotManager* index, TransactionDatabase* db,
                       const ServiceOptions& options)
    : index_(index),
      db_(db),
      durability_(options.durability),
      options_(options),
      scheduler_(index, options.scheduler, &metrics_),
      start_(std::chrono::steady_clock::now()) {}

obs::JsonValue BbsService::Handle(const obs::JsonValue& request) {
  metrics_.Inc(metrics_.requests_total);
  if (request.kind() != obs::JsonValue::Kind::kObject ||
      !request.Has("verb") ||
      request.at("verb").kind() != obs::JsonValue::Kind::kString) {
    metrics_.Inc(metrics_.errors);
    return ErrorResponse(
        "", Status::InvalidArgument("request must be an object with a "
                                    "string \"verb\" member"));
  }
  const std::string& verb = request.at("verb").AsString();
  auto begin = std::chrono::steady_clock::now();
  obs::JsonValue response;
  size_t latency_slot;
  if (verb == "PING") {
    latency_slot = metrics_.latency_ping;
    metrics_.Inc(metrics_.requests_ping);
    response = HandlePing();
  } else if (verb == "COUNT") {
    latency_slot = metrics_.latency_count;
    metrics_.Inc(metrics_.requests_count);
    response = HandleCount(request);
  } else if (verb == "INSERT") {
    latency_slot = metrics_.latency_insert;
    metrics_.Inc(metrics_.requests_insert);
    response = HandleInsert(request);
  } else if (verb == "MINE") {
    latency_slot = metrics_.latency_mine;
    metrics_.Inc(metrics_.requests_mine);
    response = HandleMine(request);
  } else if (verb == "STATS") {
    latency_slot = metrics_.latency_stats;
    metrics_.Inc(metrics_.requests_stats);
    response = HandleStats();
  } else if (verb == "CHECKPOINT") {
    latency_slot = metrics_.latency_checkpoint;
    metrics_.Inc(metrics_.requests_checkpoint);
    response = HandleCheckpoint();
  } else {
    metrics_.Inc(metrics_.errors);
    return ErrorResponse(
        verb, Status::InvalidArgument("unknown verb: " + verb));
  }
  metrics_.ObserveLog2(latency_slot, MicrosSince(begin));
  if (!response.at("ok").AsBool()) metrics_.Inc(metrics_.errors);
  return response;
}

obs::JsonValue BbsService::HandlePing() {
  obs::JsonValue response = OkResponse("PING");
  response.Set("epoch", obs::JsonValue::Uint(index_->epoch()));
  return response;
}

obs::JsonValue BbsService::HandleCount(const obs::JsonValue& request) {
  Result<Itemset> items = ItemsFromJson(request.at("items"));
  if (!items.ok()) return ErrorResponse("COUNT", items.status());
  CountResult result;
  Status counted = scheduler_.Count(*items, &result);
  if (!counted.ok()) return ErrorResponse("COUNT", counted);
  obs::JsonValue response = OkResponse("COUNT");
  response.Set("items", ItemsToJson(*items));
  response.Set("count", obs::JsonValue::Uint(result.count));
  response.Set("epoch", obs::JsonValue::Uint(result.epoch));
  response.Set("visible_transactions",
               obs::JsonValue::Uint(result.visible_transactions));
  response.Set("batch_size", obs::JsonValue::Uint(result.batch_size));
  return response;
}

obs::JsonValue BbsService::HandleInsert(const obs::JsonValue& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse("INSERT",
                         Status::Unavailable("service is draining"));
  }
  // Accept either one transaction ("items") or several ("transactions").
  std::vector<Itemset> batch;
  if (request.Has("transactions")) {
    const obs::JsonValue& txns = request.at("transactions");
    if (txns.kind() != obs::JsonValue::Kind::kArray) {
      return ErrorResponse("INSERT", Status::InvalidArgument(
                                         "\"transactions\" must be an array "
                                         "of item arrays"));
    }
    batch.reserve(txns.size());
    for (size_t i = 0; i < txns.size(); ++i) {
      Result<Itemset> items = ItemsFromJson(txns.at(i));
      if (!items.ok()) return ErrorResponse("INSERT", items.status());
      batch.push_back(std::move(*items));
    }
  } else {
    Result<Itemset> items = ItemsFromJson(request.at("items"));
    if (!items.ok()) return ErrorResponse("INSERT", items.status());
    batch.push_back(std::move(*items));
  }
  if (batch.empty()) {
    return ErrorResponse(
        "INSERT", Status::InvalidArgument("no transactions to insert"));
  }
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (durability_ != nullptr) {
      // WAL first: the batch must be durable (per the fsync policy) before
      // it can become visible or acknowledged. A failed append leaves the
      // WAL truncated back to its pre-batch length, so nothing is applied
      // and the client may safely retry.
      Status logged = durability_->LogInsert(batch);
      if (!logged.ok()) return ErrorResponse("INSERT", logged);
    }
    for (const Itemset& items : batch) {
      Status inserted = index_->Insert(items);
      if (!inserted.ok()) return ErrorResponse("INSERT", inserted);
      if (db_ != nullptr) db_->Append(items);
    }
    // Fold cold sealed segments before the checkpoint below so a triggered
    // checkpoint persists the compacted generation.
    size_t compacted = index_->CompactColdSegments(options_.compaction);
    if (compacted > 0) {
      metrics_.Inc(metrics_.compacted_segments, compacted);
    }
    epoch = index_->epoch();
    if (durability_ != nullptr && durability_->ShouldCheckpoint()) {
      // The batch is already durable in the WAL, so a failed automatic
      // checkpoint must not fail the insert; it just leaves more WAL to
      // replay. Surface it and move on.
      Status checkpointed = durability_->Checkpoint(index_->Acquire(), db_);
      if (!checkpointed.ok()) {
        std::fprintf(stderr, "bbsmined: automatic checkpoint failed: %s\n",
                     checkpointed.ToString().c_str());
      }
    }
  }
  metrics_.Inc(metrics_.inserted_transactions, batch.size());
  obs::JsonValue response = OkResponse("INSERT");
  response.Set("inserted", obs::JsonValue::Uint(batch.size()));
  response.Set("epoch", obs::JsonValue::Uint(epoch));
  response.Set("transactions",
               obs::JsonValue::Uint(index_->num_transactions()));
  return response;
}

obs::JsonValue BbsService::HandleMine(const obs::JsonValue& request) {
  if (db_ == nullptr) {
    return ErrorResponse(
        "MINE", Status::InvalidArgument(
                    "MINE requires the daemon to be started with --db"));
  }
  EclatConfig config;
  config.min_support = options_.default_min_support;
  if (request.Has("minsup")) {
    const obs::JsonValue& minsup = request.at("minsup");
    if (!minsup.is_number() || minsup.AsDouble() <= 0 ||
        minsup.AsDouble() > 1) {
      return ErrorResponse("MINE", Status::InvalidArgument(
                                       "\"minsup\" must be in (0, 1]"));
    }
    config.min_support = minsup.AsDouble();
  }
  size_t top = options_.mine_top;
  if (request.Has("top")) {
    const obs::JsonValue& requested = request.at("top");
    if (!requested.is_number() || requested.AsInt() < 1) {
      return ErrorResponse(
          "MINE", Status::InvalidArgument("\"top\" must be a positive int"));
    }
    top = static_cast<size_t>(requested.AsUint());
  }
  MiningResult result;
  size_t mined_over;
  {
    // Under write_mu_ so the database does not grow mid-scan; COUNTs keep
    // flowing against published snapshots the whole time.
    std::lock_guard<std::mutex> lock(write_mu_);
    mined_over = db_->size();
    result = MineEclat(*db_, config);
  }
  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.items < b.items;
            });
  size_t total_frequent = result.patterns.size();
  if (result.patterns.size() > top) result.patterns.resize(top);
  obs::JsonValue patterns = obs::JsonValue::Array();
  for (const Pattern& pattern : result.patterns) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("items", ItemsToJson(pattern.items));
    entry.Set("support", obs::JsonValue::Uint(pattern.support));
    patterns.Append(std::move(entry));
  }
  obs::JsonValue response = OkResponse("MINE");
  response.Set("min_support", obs::JsonValue::Double(config.min_support));
  response.Set("transactions", obs::JsonValue::Uint(mined_over));
  response.Set("total_frequent", obs::JsonValue::Uint(total_frequent));
  response.Set("patterns", std::move(patterns));
  return response;
}

obs::JsonValue BbsService::HandleCheckpoint() {
  if (durability_ == nullptr) {
    return ErrorResponse(
        "CHECKPOINT",
        Status::InvalidArgument(
            "CHECKPOINT requires the daemon to be started with "
            "--durable-dir"));
  }
  uint64_t epoch;
  uint64_t transactions;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    Snapshot snap = index_->Acquire();
    epoch = snap.epoch();
    transactions = snap.num_transactions();
    Status checkpointed = durability_->Checkpoint(snap, db_);
    if (!checkpointed.ok()) return ErrorResponse("CHECKPOINT", checkpointed);
  }
  obs::JsonValue response = OkResponse("CHECKPOINT");
  response.Set("epoch", obs::JsonValue::Uint(epoch));
  response.Set("transactions", obs::JsonValue::Uint(transactions));
  response.Set("checkpoints", obs::JsonValue::Uint(durability_->checkpoints()));
  return response;
}

obs::JsonValue BbsService::HandleStats() {
  obs::JsonValue response = OkResponse("STATS");
  response.Set("report", BuildStatsReport());
  return response;
}

obs::JsonValue BbsService::BuildStatsReport() const {
  Snapshot snap = index_->Acquire();
  ServiceReportContext ctx;
  ctx.uptime_seconds =
      static_cast<double>(MicrosSince(start_)) / 1e6;
  ctx.epoch = snap.epoch();
  ctx.transactions = snap.num_transactions();
  ctx.segments = snap.num_segments();
  ctx.snapshot_publications = index_->publications();
  ctx.snapshot_seals = index_->seals();
  ctx.segment_capacity = index_->segment_capacity();
  ctx.draining = draining_.load(std::memory_order_relaxed);
  ctx.mine_enabled = db_ != nullptr;
  ctx.index_backend = IndexBackendName(options_.index_backend);
  ctx.resident_slice_bytes = snap.ApproxResidentBytes();
  const PageFaultCounters faults = CurrentPageFaults();
  ctx.minor_faults = faults.minor;
  ctx.major_faults = faults.major;
  ctx.compaction_enabled = options_.compaction.enabled();
  ctx.compact_cold_epochs = options_.compaction.cold_epochs;
  ctx.compact_fold_bits = options_.compaction.fold_bits;
  ctx.compacted_segments = index_->compactions();
  if (durability_ != nullptr) {
    std::lock_guard<std::mutex> lock(write_mu_);
    ctx.durable = true;
    ctx.fsync_policy = durability_->fsync_policy_name();
    ctx.checkpoint_every = durability_->checkpoint_every();
    ctx.wal_appends = durability_->wal_appends();
    ctx.wal_bytes = durability_->wal_bytes();
    ctx.wal_fsyncs = durability_->wal_fsyncs();
    ctx.checkpoints = durability_->checkpoints();
    ctx.wal_txns_since_checkpoint = durability_->txns_since_checkpoint();
    const DurabilityManager::RecoveryInfo& recovery = durability_->recovery();
    ctx.checkpoint_loaded = recovery.checkpoint_loaded;
    ctx.recovered_records = recovery.recovered_records;
    ctx.torn_tail_bytes = recovery.torn_tail_bytes;
    ctx.recovery_seconds = recovery.recovery_seconds;
  }
  return BuildServiceReport(ctx, metrics_);
}

void BbsService::Drain() {
  draining_.store(true, std::memory_order_relaxed);
  scheduler_.Shutdown();
}

SocketServer::SocketServer(BbsService* service,
                           const SocketServerOptions& options)
    : service_(service), options_(options) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  Result<OwnedFd> listener =
      ListenTcp(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  Result<uint16_t> port = BoundPort(listener->get());
  if (!port.ok()) return port.status();
  listener_ = std::move(*listener);
  port_ = *port;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<OwnedFd> accepted =
        AcceptWithTimeout(listener_.get(), options_.poll_interval_ms);
    if (!accepted.ok()) {
      if (stop_.load(std::memory_order_acquire)) return;
      continue;  // transient accept failure; keep serving
    }
    if (!accepted->valid()) continue;  // poll timeout: re-check stop flag
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    auto conn = std::make_unique<Connection>();
    Connection* slot = conn.get();
    uint64_t open = open_connections_.fetch_add(1) + 1;
    service_->metrics().GaugeMax(service_->metrics().active_connections,
                                 open);
    slot->thread = std::thread(
        [this, fd = std::move(*accepted), slot]() mutable {
          ServeConnection(std::move(fd), slot);
        });
    connections_.push_back(std::move(conn));
  }
}

void SocketServer::ServeConnection(OwnedFd fd, Connection* slot) {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<obs::JsonValue> request =
        ReadFrame(fd.get(), options_.poll_interval_ms);
    if (!request.ok()) {
      if (request.status().code() == StatusCode::kUnavailable) {
        continue;  // idle poll timeout: re-check the stop flag
      }
      if (request.status().code() != StatusCode::kNotFound) {
        // Best effort: tell the peer what went wrong before closing.
        (void)WriteFrame(fd.get(), ErrorResponse("", request.status()));
      }
      break;  // clean disconnect or broken transport either way
    }
    obs::JsonValue response = service_->Handle(*request);
    if (!WriteFrame(fd.get(), response).ok()) break;
  }
  fd.Reset();
  open_connections_.fetch_sub(1);
  slot->done.store(true, std::memory_order_release);
}

void SocketServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  listener_.Reset();
}

}  // namespace bbsmine::service
