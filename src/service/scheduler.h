// Batched CountItemSet scheduler with bounded admission and backpressure.
//
// A busy daemon sees many concurrent COUNT requests. Answering each on its
// own thread against its own snapshot wastes the property that makes
// bit-sliced indexes serve well (COBS serves its signature index this way):
// queries touching the same item stream the same slices, so in-flight
// requests should be *fused* and share the streams. The scheduler:
//
//   * admits requests into a bounded queue — a full queue rejects with
//     Status::Unavailable (backpressure; the wire layer surfaces it as a
//     retryable error) instead of letting latency grow without bound;
//   * a dispatcher thread drains the queue in arrival order into batches
//     (up to max_batch requests), acquires ONE snapshot per batch, and
//     answers every request in the batch at that epoch — identical
//     requests collapse to one evaluation;
//   * items shared by two or more distinct queries of a batch get their
//     single-item transaction vectors computed once per segment (the
//     shared slice streams); each query then seeds from the sparsest
//     cached vector it contains and ANDs only its remaining items' slices;
//   * per-(query, segment) work fans out over a ThreadPool; per-query
//     totals are reduced in segment order, so every answer is bit-identical
//     to a serial SegmentedBbs::CountItemSet over the same prefix.
//
// Count() blocks the calling (connection) thread until its batch executes;
// the contract mirrors a synchronous RPC handler.

#ifndef BBSMINE_SERVICE_SCHEDULER_H_
#define BBSMINE_SERVICE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "service/metrics.h"
#include "service/snapshot.h"
#include "util/thread_pool.h"

namespace bbsmine::service {

struct SchedulerOptions {
  /// Admission bound: requests beyond this many pending are rejected with
  /// Status::Unavailable.
  size_t max_pending = 1024;
  /// Largest number of requests fused into one batch.
  size_t max_batch = 256;
  /// Worker threads for the per-(query, segment) fan-out (0 = one per
  /// hardware thread).
  size_t num_threads = 0;
};

/// The answer to one admitted COUNT request.
struct CountResult {
  uint64_t count = 0;
  /// Snapshot the request was answered at.
  uint64_t epoch = 0;
  uint64_t visible_transactions = 0;
  /// Number of requests fused into the same batch (>= 1).
  uint32_t batch_size = 1;
  /// Time the request waited in the admission queue before its batch
  /// started executing.
  uint64_t queue_wait_us = 0;
  /// Which batch answered the request (monotonic per scheduler, 1-based).
  uint64_t batch_id = 0;
  /// 64-bit BBS slice words streamed to answer this request's query
  /// (summed over segments; excludes the batch's shared seed cache, whose
  /// cost is amortized across the queries that reuse it).
  uint64_t slice_words = 0;
};

/// Per-request observability context threaded through admission. `sampled`
/// requests emit queue-wait and per-segment spans attributed to
/// `trace_id`; unsampled requests still get queue_wait_us/batch_id back.
struct CountObs {
  std::string trace_id;
  bool sampled = false;
};

class CountScheduler {
 public:
  /// `index` must outlive the scheduler. `metrics` and `tracer` may be
  /// null; a null (or category-disabled) tracer makes every span a no-op.
  CountScheduler(const SnapshotManager* index, const SchedulerOptions& options,
                 ServiceMetrics* metrics, obs::Tracer* tracer = nullptr);

  /// Drains pending requests, then stops the dispatcher.
  ~CountScheduler();

  CountScheduler(const CountScheduler&) = delete;
  CountScheduler& operator=(const CountScheduler&) = delete;

  /// Admits `items` (canonicalized internally; must be non-empty), blocks
  /// until the batch containing it executes, and fills `out`.
  /// Returns Unavailable under backpressure or after Shutdown;
  /// InvalidArgument for an empty itemset.
  Status Count(const Itemset& items, CountResult* out) {
    return Count(items, CountObs{}, out);
  }

  /// Same, with per-request observability context.
  Status Count(const Itemset& items, const CountObs& obs, CountResult* out);

  /// Stops admitting, executes every already-admitted request, joins the
  /// dispatcher. Idempotent.
  void Shutdown();

  /// Requests currently waiting for a batch.
  size_t pending() const;

 private:
  struct Request {
    Itemset items;
    std::promise<CountResult> promise;
    std::string trace_id;
    bool sampled = false;
    std::chrono::steady_clock::time_point admitted_at;
    double admit_ts_us = 0;  ///< tracer timestamp at admission (if tracing)
  };

  void DispatcherLoop();
  void RunBatch(std::vector<Request>* batch);

  const SnapshotManager* index_;
  SchedulerOptions options_;
  ServiceMetrics* metrics_;
  obs::Tracer* tracer_;
  uint64_t next_batch_id_ = 0;  // dispatcher thread only

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stop_ = false;
  std::mutex join_mu_;  // serializes concurrent Shutdown calls

  ThreadPool pool_;
  std::thread dispatcher_;
};

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_SCHEDULER_H_
