// The service-layer metric catalog and service report.
//
// Exactly like obs/report.h does for mining runs, this file is the single
// place where every `bbsmined` service metric is named. Unlike the mining
// engine's per-worker shards (which merge at a barrier), service updates
// come from connection threads with no natural join point — so the catalog
// is a fixed array of relaxed std::atomic<uint64_t> slots: an Inc is one
// fetch_add, a gauge watermark is one CAS-max loop, a histogram observe is
// one fetch_add on a per-bucket atomic. No mutex is taken on the request
// path. Snapshot() reads every slot with relaxed loads; a histogram's
// rendered total is derived from its bucket sum at snapshot time, so the
// `total == sum(by_depth) + overflow` invariant the CI schema check
// asserts holds by construction even against concurrent writers.
//
// Latency and batch-size histograms reuse log2 buckets (obs::Log2Bucket):
// bucket d of a latency histogram counts requests that took
// [2^(d-1), 2^d) microseconds. The rendered JSON has the same
// {by_depth, overflow, total} shape as the mining run report's depth
// histograms, so the CI schema check treats both the same way.
//
// Windowed metrics: alongside the lifetime aggregate the catalog keeps a
// small ring of cumulative snapshots taken every `interval` of service
// time (default 12 slots x 10 s). Rotation is lazy — MaybeRotateWindows()
// is called from the request path and costs one relaxed load + compare
// when no rotation is due; when one is due, one thread takes the window
// mutex and writes catch-up snapshots. The STATS report's "window"
// section subtracts the newest snapshot at least 60 s old from the
// current cumulative values, yielding `last_60s` counters and latency
// histograms with recent p50/p95/p99 (obs::PercentileFromLog2Buckets).
// Watermark gauges are lifetime-only: a high-water mark has no meaningful
// per-window delta.
//
// The service report is the STATS verb's payload and the daemon's shutdown
// artifact (--report-out): a schema-versioned JSON document with a
// "service" identity section and a "metrics" section rendered by the same
// obs::MetricsSectionJson used by mining run reports.

#ifndef BBSMINE_SERVICE_METRICS_H_
#define BBSMINE_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace bbsmine::service {

/// Version of the service report JSON schema; independent of the mining
/// run-report schema. docs/OBSERVABILITY.md documents each version.
inline constexpr int64_t kServiceReportSchemaVersion = 1;

/// Thread-safe named metric catalog for the query service. Slots are fixed
/// at construction; updates are single relaxed atomic operations.
class ServiceMetrics {
 public:
  /// Windowed-metrics shape: `slots` cumulative snapshots taken every
  /// `interval_us` of service time. The defaults (12 x 10 s) retain two
  /// minutes of history, enough to answer "last 60 s" with one-interval
  /// granularity. Tests shrink both to drive rotation synthetically.
  struct WindowOptions {
    uint64_t interval_us = 10'000'000;
    size_t slots = 12;
  };

  /// Lookback horizon of the rendered "last_60s" window section.
  static constexpr uint64_t kWindowLookbackUs = 60'000'000;

  ServiceMetrics() : ServiceMetrics(WindowOptions{}) {}
  explicit ServiceMetrics(const WindowOptions& windows);

  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  // Counter slots (section "counters").
  size_t requests_total;         ///< every frame handled, any verb
  size_t requests_ping;
  size_t requests_count;
  size_t requests_insert;
  size_t requests_mine;
  size_t requests_stats;
  size_t requests_checkpoint;
  size_t requests_dump;          ///< flight-recorder DUMP verb
  size_t requests_shardinfo;     ///< cluster SHARDINFO verb
  size_t requests_promote;       ///< replication PROMOTE verb
  size_t errors;                 ///< requests answered with ok=false
  size_t rejected_backpressure;  ///< COUNTs bounced by the admission queue
  size_t batches;                ///< scheduler batches executed
  size_t batch_fused_requests;   ///< requests answered from a shared batch
  size_t shared_seed_queries;    ///< per-segment counts seeded from the
                                 ///< batch's shared single-item slice cache
  size_t inserted_transactions;
  size_t compacted_segments;     ///< cold sealed segments fold-compacted
  size_t slow_queries;           ///< requests over the slow-query threshold
  size_t traced_requests;        ///< requests that emitted a sampled span

  // Cluster counters (section "cluster"; all zero on a standalone daemon —
  // only the router's fan-out path increments them).
  size_t pruned_shard_queries;   ///< shard fan-outs skipped by the Bloofi tree
  size_t hedged_requests;        ///< fan-out legs re-issued after the hedge
                                 ///< timeout fired
  size_t degraded_responses;     ///< answers served with shards missing
  size_t shard_errors;           ///< downstream legs that failed (transport,
                                 ///< timeout, or error response)
  size_t failovers;              ///< replicas promoted after a primary died

  // Gauge slots (section "gauges"; watermark semantics).
  size_t queue_depth;         ///< deepest admission-queue backlog seen
  size_t batch_size_peak;     ///< largest batch fused
  size_t active_connections;  ///< most simultaneous client connections

  // Histogram slots (log2-bucketed; sections "latency_us" / "batch").
  size_t latency_ping;
  size_t latency_count;
  size_t latency_insert;
  size_t latency_mine;
  size_t latency_stats;
  size_t latency_checkpoint;
  size_t latency_dump;
  size_t latency_shardinfo;
  size_t latency_promote;
  size_t batch_size_hist;
  size_t fanout_latency;  ///< "cluster.fanout_us": whole fan-out round trips

  void Inc(size_t slot, uint64_t n = 1) {
    scalars_[slot].fetch_add(n, std::memory_order_relaxed);
  }

  void GaugeMax(size_t slot, uint64_t v) {
    uint64_t cur = scalars_[slot].load(std::memory_order_relaxed);
    while (v > cur && !scalars_[slot].compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Records `magnitude` (a latency in microseconds, a batch size) into a
  /// log2-bucketed histogram slot.
  void ObserveLog2(size_t slot, uint64_t magnitude) {
    size_t bucket = obs::Log2Bucket(magnitude);
    if (bucket > obs::DepthHistogram::kMaxTrackedDepth) bucket = 0;
    hist_[slot * kBuckets + bucket].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t counter(size_t slot) const {
    return scalars_[slot].load(std::memory_order_relaxed);
  }

  /// Point-in-time export of every metric. Each histogram's total is the
  /// sum of its bucket loads, so per-histogram invariants hold even when
  /// writers race the snapshot.
  std::vector<obs::MetricSample> Snapshot() const;

  /// Lazily takes any cumulative window snapshots that have come due by
  /// `now_rel_us` (µs since service start). Cheap when none is due (one
  /// relaxed load); called from the request path and before reports.
  /// Const because rotation only refreshes the window ring — logically a
  /// cache of the (unchanged) cumulative counters.
  void MaybeRotateWindows(uint64_t now_rel_us) const;

  /// The report's "window" section: interval/slot shape plus a `last_60s`
  /// object of counter deltas and latency histogram deltas (with
  /// p50/p95/p99) relative to the newest snapshot at least 60 s old — or
  /// service start, when the daemon is younger than the lookback.
  obs::JsonValue WindowSectionJson(uint64_t now_rel_us) const;

  const WindowOptions& window_options() const { return window_options_; }

 private:
  static constexpr size_t kBuckets = obs::DepthHistogram::kMaxTrackedDepth + 1;

  struct Meta {
    std::string name;
    obs::MetricKind kind;
    size_t slot;
  };

  /// Cumulative values of every slot at one instant (relaxed loads).
  struct Cumulative {
    std::vector<uint64_t> scalars;
    std::vector<uint64_t> hist;
  };

  struct WindowSnap {
    uint64_t end_us = 0;
    bool valid = false;
    Cumulative cum;
  };

  size_t AddCounter(std::string name);
  size_t AddGauge(std::string name);
  size_t AddHistogram(std::string name);
  Cumulative CaptureCumulative() const;

  std::vector<Meta> metas_;
  size_t num_scalars_ = 0;
  size_t num_hists_ = 0;
  std::unique_ptr<std::atomic<uint64_t>[]> scalars_;
  std::unique_ptr<std::atomic<uint64_t>[]> hist_;  // num_hists_ x kBuckets

  WindowOptions window_options_;
  mutable std::atomic<uint64_t> next_rotation_us_;
  mutable std::mutex window_mu_;
  mutable std::vector<WindowSnap> ring_;  // guarded by window_mu_
  mutable size_t ring_next_ = 0;          // guarded by window_mu_
};

/// Identity / liveness facts that frame the metric snapshot.
struct ServiceReportContext {
  double uptime_seconds = 0;
  uint64_t epoch = 0;
  uint64_t transactions = 0;
  uint64_t segments = 0;
  uint64_t snapshot_publications = 0;
  uint64_t snapshot_seals = 0;
  uint64_t segment_capacity = 0;
  bool draining = false;
  bool mine_enabled = false;

  /// Durability facts (rendered as the report's "durability" section;
  /// `durable` false renders just {"enabled": false}). Additive — the
  /// schema version stays 1.
  bool durable = false;
  std::string fsync_policy;
  uint64_t checkpoint_every = 0;
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t checkpoints = 0;
  uint64_t wal_txns_since_checkpoint = 0;
  uint64_t wal_truncations_deferred = 0;
  uint64_t recovered_records = 0;
  uint64_t torn_tail_bytes = 0;
  double recovery_seconds = 0;
  bool checkpoint_loaded = false;

  /// Read-path facts: which SliceSource backend serves sealed segments,
  /// heap bytes the visible snapshot pins (0 per mmap'd segment), and
  /// process page-fault totals (getrusage) — the real-memory signal that
  /// heap accounting cannot see. Additive; schema stays 1.
  std::string index_backend = "resident";
  uint64_t resident_slice_bytes = 0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;

  /// Cold-segment fold compaction (rendered as the "compaction" section;
  /// disabled renders just {"enabled": false}).
  bool compaction_enabled = false;
  uint64_t compact_cold_epochs = 0;
  uint64_t compact_fold_bits = 0;
  uint64_t compacted_segments = 0;

  /// Replication facts (rendered as the report's "replication" section).
  /// The caller builds the whole object — primary, follower, and router
  /// render different members — and leaves it null for {"enabled": false}.
  /// Additive; schema stays 1.
  obs::JsonValue replication;

  /// Live (non-watermark) values rendered next to the watermark gauges:
  /// the admission queue depth and open connection count at report time.
  uint64_t pending_requests = 0;
  uint64_t open_connections = 0;

  /// Service-relative timestamp (µs) the "window" section is rendered at.
  uint64_t window_now_us = 0;

  /// Report identity: "bbsmined_service" for a daemon, "bbsrouter_service"
  /// for the router — both share schema version 1.
  std::string kind = "bbsmined_service";

  /// Cluster facts (rendered as the report's "cluster" section on daemon
  /// and router alike). A standalone daemon is a one-shard fleet of
  /// itself: role "shard", 1/1 up. The router sets role "router", the real
  /// fleet size, and a per-shard detail array.
  std::string cluster_role = "shard";
  uint64_t shards_total = 1;
  uint64_t shards_up = 1;
  /// Per-shard detail (router only): JSON array, or null to omit.
  obs::JsonValue cluster_shards;
};

/// Builds the schema-versioned service report (STATS payload / shutdown
/// artifact).
obs::JsonValue BuildServiceReport(const ServiceReportContext& ctx,
                                  const ServiceMetrics& metrics);

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_METRICS_H_
