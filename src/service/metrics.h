// The service-layer metric catalog and service report.
//
// Exactly like obs/report.h does for mining runs, this file is the single
// place where every `bbsmined` service metric is named. The catalog is a
// MetricsRegistry (obs/metrics.h) wrapped with a mutex: unlike the mining
// engine's per-worker shards (which merge at a barrier), service updates
// come from connection threads with no natural join point, so a lock is
// the honest way to keep the aggregate consistent — request handling is
// dominated by slice streaming, and one uncontended lock per request is
// noise next to it.
//
// Latency and batch-size histograms reuse DepthHistogram with log2 buckets
// (obs::Log2Bucket): bucket d of a latency histogram counts requests that
// took [2^(d-1), 2^d) microseconds. The rendered JSON has the same
// {by_depth, overflow, total} shape as the mining run report's depth
// histograms, so the CI schema check treats both the same way.
//
// The service report is the STATS verb's payload and the daemon's shutdown
// artifact (--report-out): a schema-versioned JSON document with a
// "service" identity section and a "metrics" section rendered by the same
// obs::MetricsSectionJson used by mining run reports.

#ifndef BBSMINE_SERVICE_METRICS_H_
#define BBSMINE_SERVICE_METRICS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace bbsmine::service {

/// Version of the service report JSON schema; independent of the mining
/// run-report schema. docs/OBSERVABILITY.md documents each version.
inline constexpr int64_t kServiceReportSchemaVersion = 1;

/// Thread-safe named metric catalog for the query service. Slots are fixed
/// at construction; updates take an internal lock.
class ServiceMetrics {
 public:
  ServiceMetrics();

  // Counter slots (section "counters").
  size_t requests_total;         ///< every frame handled, any verb
  size_t requests_ping;
  size_t requests_count;
  size_t requests_insert;
  size_t requests_mine;
  size_t requests_stats;
  size_t requests_checkpoint;
  size_t errors;                 ///< requests answered with ok=false
  size_t rejected_backpressure;  ///< COUNTs bounced by the admission queue
  size_t batches;                ///< scheduler batches executed
  size_t batch_fused_requests;   ///< requests answered from a shared batch
  size_t shared_seed_queries;    ///< per-segment counts seeded from the
                                 ///< batch's shared single-item slice cache
  size_t inserted_transactions;
  size_t compacted_segments;     ///< cold sealed segments fold-compacted

  // Gauge slots (section "gauges"; watermark semantics).
  size_t queue_depth;         ///< deepest admission-queue backlog seen
  size_t batch_size_peak;     ///< largest batch fused
  size_t active_connections;  ///< most simultaneous client connections

  // Histogram slots (log2-bucketed; sections "latency_us" / "batch").
  size_t latency_ping;
  size_t latency_count;
  size_t latency_insert;
  size_t latency_mine;
  size_t latency_stats;
  size_t latency_checkpoint;
  size_t batch_size_hist;

  void Inc(size_t slot, uint64_t n = 1);
  void GaugeMax(size_t slot, uint64_t v);

  /// Records `magnitude` (a latency in microseconds, a batch size) into a
  /// log2-bucketed histogram slot.
  void ObserveLog2(size_t slot, uint64_t magnitude);

  uint64_t counter(size_t slot) const;

  /// Consistent point-in-time export of every metric.
  std::vector<obs::MetricSample> Snapshot() const;

 private:
  mutable std::mutex mu_;
  obs::MetricsRegistry registry_;
};

/// Identity / liveness facts that frame the metric snapshot.
struct ServiceReportContext {
  double uptime_seconds = 0;
  uint64_t epoch = 0;
  uint64_t transactions = 0;
  uint64_t segments = 0;
  uint64_t snapshot_publications = 0;
  uint64_t snapshot_seals = 0;
  uint64_t segment_capacity = 0;
  bool draining = false;
  bool mine_enabled = false;

  /// Durability facts (rendered as the report's "durability" section;
  /// `durable` false renders just {"enabled": false}). Additive — the
  /// schema version stays 1.
  bool durable = false;
  std::string fsync_policy;
  uint64_t checkpoint_every = 0;
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t checkpoints = 0;
  uint64_t wal_txns_since_checkpoint = 0;
  uint64_t recovered_records = 0;
  uint64_t torn_tail_bytes = 0;
  double recovery_seconds = 0;
  bool checkpoint_loaded = false;

  /// Read-path facts: which SliceSource backend serves sealed segments,
  /// heap bytes the visible snapshot pins (0 per mmap'd segment), and
  /// process page-fault totals (getrusage) — the real-memory signal that
  /// heap accounting cannot see. Additive; schema stays 1.
  std::string index_backend = "resident";
  uint64_t resident_slice_bytes = 0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;

  /// Cold-segment fold compaction (rendered as the "compaction" section;
  /// disabled renders just {"enabled": false}).
  bool compaction_enabled = false;
  uint64_t compact_cold_epochs = 0;
  uint64_t compact_fold_bits = 0;
  uint64_t compacted_segments = 0;
};

/// Builds the schema-versioned service report (STATS payload / shutdown
/// artifact).
obs::JsonValue BuildServiceReport(const ServiceReportContext& ctx,
                                  const ServiceMetrics& metrics);

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_METRICS_H_
