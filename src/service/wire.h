// The bbsmined wire protocol: length-prefixed JSON frames over TCP.
//
// Frame layout (both directions):
//
//   +----------------+---------------------------+
//   | length: u32 LE | payload: `length` bytes of |
//   |                | UTF-8 JSON (one document)  |
//   +----------------+---------------------------+
//
// Requests are JSON objects with a "verb" member (PING, COUNT, MINE,
// INSERT, STATS) plus verb-specific fields; responses always carry
// "ok": true/false, an echoed "verb", and on failure an "error" object
// {code, message} where code is the StatusCodeName of the underlying
// Status — so a client can distinguish retryable backpressure
// (Unavailable) from real errors. docs/SERVICE.md is the protocol spec.
//
// Frames are bounded (kMaxFrameBytes) so a malformed length prefix cannot
// make the daemon allocate arbitrary memory.

#ifndef BBSMINE_SERVICE_WIRE_H_
#define BBSMINE_SERVICE_WIRE_H_

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "storage/transaction.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace bbsmine::service {

/// Largest accepted frame payload (16 MiB).
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Serializes `message` compactly and writes one frame to `fd`.
Status WriteFrame(int fd, const obs::JsonValue& message);

/// Reads one frame from `fd` and parses its payload.
///  * NotFound    — the peer closed the connection cleanly before a frame
///                  (idle client disconnect; not an error).
///  * Unavailable — no length prefix arrived within `timeout_ms` (callers
///                  polling a stop flag re-issue the read).
///  * IoError / Corruption — transport failure, oversized frame, or
///                  malformed JSON.
/// Once the length prefix arrives the payload is awaited with
/// `payload_timeout_ms` so a stalled peer cannot wedge a server thread.
Result<obs::JsonValue> ReadFrame(int fd, int timeout_ms = -1,
                                 int payload_timeout_ms = 10'000,
                                 uint32_t max_frame_bytes = kMaxFrameBytes);

/// Builds the uniform failure response for `status`.
obs::JsonValue ErrorResponse(const std::string& verb, const Status& status);

/// Builds the uniform success envelope: {"ok": true, "verb": verb}.
obs::JsonValue OkResponse(const std::string& verb);

/// Reads an "items" member (JSON array of non-negative integers) into a
/// canonical itemset.
Result<Itemset> ItemsFromJson(const obs::JsonValue& array);

/// Renders an itemset as a JSON array.
obs::JsonValue ItemsToJson(const Itemset& items);

/// Renders a bit vector as a lowercase hex string: byte i holds bits
/// [8i, 8i+8), least-significant bit first within the byte. Used by the
/// SHARDINFO verb to ship shard signatures compactly.
std::string BitsToHex(const BitVector& bits);

/// Parses a BitsToHex string back into a vector of exactly `num_bits` bits.
Result<BitVector> BitsFromHex(const std::string& hex, size_t num_bits);

}  // namespace bbsmine::service

#endif  // BBSMINE_SERVICE_WIRE_H_
