#include "service/slow_log.h"

#include <cinttypes>

#include "obs/json.h"

namespace bbsmine::service {

SlowQueryLog::~SlowQueryLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<SlowQueryLog>> SlowQueryLog::Open(
    const std::string& path) {
  // Heal a torn tail: if the file ends mid-line (crash during a write),
  // the first new record must start on its own line.
  bool needs_newline = false;
  if (std::FILE* probe = std::fopen(path.c_str(), "rb"); probe != nullptr) {
    if (std::fseek(probe, -1, SEEK_END) == 0) {
      int last = std::fgetc(probe);
      needs_newline = last != EOF && last != '\n';
    }
    std::fclose(probe);
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::NotFound("cannot open slow-query log " + path);
  }
  if (needs_newline) std::fputc('\n', file);
  return std::unique_ptr<SlowQueryLog>(new SlowQueryLog(path, file));
}

void SlowQueryLog::Append(const SlowQueryRecord& record) {
  // Compact one-object-per-line JSON, keys in schema order
  // (docs/OBSERVABILITY.md).
  std::string line;
  line.reserve(256);
  char buf[64];
  auto add_uint = [&](const char* key, uint64_t value) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 ",", key, value);
    line += buf;
  };
  line += "{";
  add_uint("at_us", record.at_rel_us);
  line += "\"trace_id\":\"" + obs::JsonEscape(record.trace_id) + "\",";
  line += "\"verb\":\"" + obs::JsonEscape(record.verb) + "\",";
  add_uint("latency_us", record.latency_us);
  add_uint("queue_wait_us", record.queue_wait_us);
  add_uint("batch_size", record.batch_size);
  add_uint("items", record.items);
  add_uint("epoch", record.epoch);
  add_uint("slice_words", record.slice_words);
  line += "\"backend\":\"" + obs::JsonEscape(record.backend) + "\",";
  line += record.ok ? "\"outcome\":\"ok\"}" : "\"outcome\":\"error\"}";
  line += "\n";

  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ++appended_;
}

uint64_t SlowQueryLog::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

}  // namespace bbsmine::service
