#include "util/status.h"

#include <cerrno>
#include <system_error>

namespace bbsmine {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kIndeterminate:
      return "Indeterminate";
  }
  return "Unknown";
}

Status StatusFromErrno(int errno_value, const std::string& context) {
  // std::generic_category().message() is the thread-safe strerror: it maps
  // POSIX errno values to their canonical text without the shared buffer.
  return Status::IoError(context + ": " +
                         std::generic_category().message(errno_value) +
                         " (errno " + std::to_string(errno_value) + ")");
}

Status StatusFromErrno(const std::string& context) {
  return StatusFromErrno(errno, context);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace bbsmine
