// NEON kernels for aarch64: 128-bit lanes with vcnt-based popcount
// (vcntq_u8 + widening pairwise adds) fused into the AND pass. NEON is
// architecturally guaranteed on aarch64, so no extra compile flags or
// runtime feature bits are needed beyond targeting aarch64 at all.

#include "util/bitvector_kernels.h"

#if defined(BBSMINE_HAVE_KERNEL_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <bit>
#include <cstring>

namespace bbsmine {
namespace kernels {
namespace {

constexpr size_t kWordsPerVec = 2;  // 128 bits

inline uint64x2_t Load(const Word* p) {
  return vld1q_u64(p);
}

inline void Store(Word* p, uint64x2_t v) { vst1q_u64(p, v); }

/// Popcount of one 128-bit vector: per-byte counts, then one horizontal
/// byte-sum (the max per-vector count, 128, fits a u8 lane sum).
inline uint64_t Popcount128(uint64x2_t v) {
  uint8x16_t counts = vcntq_u8(vreinterpretq_u8_u64(v));
  return vaddvq_u8(counts);
}

uint64_t NeonCount(const Word* w, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    total += Popcount128(Load(w + i));
  }
  for (; i < n; ++i) total += static_cast<uint64_t>(std::popcount(w[i]));
  return total;
}

void NeonAndWords(Word* dst, const Word* src, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    Store(dst + i, vandq_u64(Load(dst + i), Load(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

uint64_t NeonAndCount(Word* dst, const Word* src, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    uint64x2_t v = vandq_u64(Load(dst + i), Load(src + i));
    Store(dst + i, v);
    total += Popcount128(v);
  }
  for (; i < n; ++i) {
    dst[i] &= src[i];
    total += static_cast<uint64_t>(std::popcount(dst[i]));
  }
  return total;
}

uint64_t NeonAssignAndCount(Word* dst, const Word* a, const Word* b,
                            size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    uint64x2_t v = vandq_u64(Load(a + i), Load(b + i));
    Store(dst + i, v);
    total += Popcount128(v);
  }
  for (; i < n; ++i) {
    dst[i] = a[i] & b[i];
    total += static_cast<uint64_t>(std::popcount(dst[i]));
  }
  return total;
}

void NeonOrWords(Word* dst, const Word* src, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    Store(dst + i, vorrq_u64(Load(dst + i), Load(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void NeonAndNotWords(Word* dst, const Word* src, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    Store(dst + i, vbicq_u64(Load(dst + i), Load(src + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

bool NeonIntersects(const Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    uint64x2_t v = vandq_u64(Load(a + i), Load(b + i));
    if ((vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool NeonIsSubsetOf(const Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    uint64x2_t v = vbicq_u64(Load(a + i), Load(b + i));  // a & ~b
    if ((vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

constexpr size_t kAndManyBlockWords = 512;  // 4 KiB per operand stream

uint64_t NeonAndManyCount(Word* dst, const Word* const* srcs, size_t k,
                          size_t n) {
  if (k == 1) {
    std::memcpy(dst, srcs[0], n * sizeof(Word));
    return NeonCount(dst, n);
  }
  uint64_t total = 0;
  for (size_t base = 0; base < n; base += kAndManyBlockWords) {
    size_t len = std::min(kAndManyBlockWords, n - base);
    uint64_t block =
        NeonAssignAndCount(dst + base, srcs[0] + base, srcs[1] + base, len);
    for (size_t op = 2; op < k && block != 0; ++op) {
      block = NeonAndCount(dst + base, srcs[op] + base, len);
    }
    total += block;
  }
  return total;
}

const KernelOps kNeonOps = {
    .name = "neon",
    .count = NeonCount,
    .and_words = NeonAndWords,
    .and_count = NeonAndCount,
    .assign_and_count = NeonAssignAndCount,
    .or_words = NeonOrWords,
    .andnot_words = NeonAndNotWords,
    .intersects = NeonIntersects,
    .is_subset_of = NeonIsSubsetOf,
    .and_many_count = NeonAndManyCount,
};

}  // namespace

namespace internal {
const KernelOps* NeonKernels() { return &kNeonOps; }
}  // namespace internal

}  // namespace kernels
}  // namespace bbsmine

#endif  // BBSMINE_HAVE_KERNEL_NEON
