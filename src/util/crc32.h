// CRC-32 (IEEE 802.3 polynomial, reflected) for on-disk integrity checks.

#ifndef BBSMINE_UTIL_CRC32_H_
#define BBSMINE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bbsmine {

/// Computes the CRC-32 of `len` bytes at `data`, continuing from `seed`.
/// Pass the previous return value as `seed` to checksum data incrementally;
/// start with 0.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_CRC32_H_
