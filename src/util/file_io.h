// Whole-file read/write helpers with full error propagation and atomic
// replacement semantics.
//
// The persistence layers (BbsIndex, SegmentedBbs, TransactionDatabase,
// RecordStore) serialize into an in-memory buffer and write it in one shot.
// Two classic failure modes are handled here so callers never have to:
//
//  * Late write errors. A bare fopen/fwrite pair may buffer everything and
//    report success, with ENOSPC only surfacing at fflush/fclose. Every
//    step — open, write, fsync, close, rename — is checked and surfaced as
//    Status::IoError carrying the errno text.
//
//  * Destroying the previous good file. Opening the destination with
//    O_TRUNC means a crash or full disk mid-write leaves a truncated,
//    CRC-invalid file where a valid one used to be. WriteBinaryFile
//    therefore writes `<path>.tmp` in the same directory, fsyncs it, and
//    rename(2)s it over the target: readers see either the complete old
//    file or the complete new one, never a torn hybrid.
//
// Every step consults a FaultInjector point ("<prefix>.open",
// "<prefix>.write", "<prefix>.fsync", "<prefix>.rename" — prefix "file" by
// default, overridable per call so e.g. checkpoint writes expose
// "checkpoint.rename"), which is how the robustness tests force ENOSPC,
// short writes, and crashes at exact boundaries.

#ifndef BBSMINE_UTIL_FILE_IO_H_
#define BBSMINE_UTIL_FILE_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace bbsmine {

struct WriteFileOptions {
  /// fsync the temp file before rename (and best-effort fsync the parent
  /// directory after). Disable only for data whose loss on power failure is
  /// acceptable; kill -9 durability does not need it.
  bool sync = true;
  /// FaultInjector point prefix for this write ("file" -> "file.open",
  /// "file.write", "file.fsync", "file.rename").
  const char* fault_point = "file";
};

/// Writes `data` to `path` atomically: the previous file (if any) remains
/// intact unless the replacement was completely written. Returns IoError if
/// any step fails; a failed write never leaves a partial file at `path`
/// (the temp file is unlinked on error).
Status WriteBinaryFile(const std::string& path, std::string_view data,
                       const WriteFileOptions& options = WriteFileOptions());

/// Reads the whole file at `path`. Returns IoError if the file cannot be
/// opened or a read fails.
Result<std::string> ReadBinaryFile(const std::string& path);

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_FILE_IO_H_
