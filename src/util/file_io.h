// Whole-file read/write helpers with full error propagation.
//
// The persistence layers (BbsIndex, SegmentedBbs) serialize into an in-memory
// buffer and write it in one shot. Writing through a bare fopen/fwrite pair
// silently loses late failures: fwrite may buffer everything and report
// success, with ENOSPC only surfacing at fflush/fclose time. A full disk
// could then leave a truncated, CRC-invalid index behind while Save returned
// OK. These helpers check every step — open, write, flush, close — and turn
// any failure into Status::IoError.

#ifndef BBSMINE_UTIL_FILE_IO_H_
#define BBSMINE_UTIL_FILE_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace bbsmine {

/// Writes `data` to `path`, replacing any existing file. Returns IoError if
/// the file cannot be opened, written, flushed, or closed.
Status WriteBinaryFile(const std::string& path, std::string_view data);

/// Reads the whole file at `path`. Returns IoError if the file cannot be
/// opened or a read fails.
Result<std::string> ReadBinaryFile(const std::string& path);

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_FILE_IO_H_
