// Deterministic pseudo-random number generation for data generators and
// tests.
//
// We implement xoshiro256** (Blackman & Vigna) from scratch rather than using
// std::mt19937 so that generated datasets are bit-identical across standard
// library implementations — the benchmark harness relies on reproducible
// workloads.

#ifndef BBSMINE_UTIL_RNG_H_
#define BBSMINE_UTIL_RNG_H_

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace bbsmine {

/// xoshiro256** pseudo-random generator with SplitMix64 seeding.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly random bits.
  uint64_t Next() {
    uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    unsigned __int128 product =
        static_cast<unsigned __int128>(Next()) * bound;
    uint64_t low = static_cast<uint64_t>(product);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        product = static_cast<unsigned __int128>(Next()) * bound;
        low = static_cast<uint64_t>(product);
      }
    }
    return static_cast<uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean) {
    // -mean * ln(U) with U in (0, 1].
    double u = 1.0 - NextDouble();
    return -mean * std::log(u);
  }

  /// Poisson-distributed value with the given mean.
  ///
  /// Uses Knuth's product-of-uniforms method for small means and a normal
  /// approximation (clamped at zero) for large means; the generators in this
  /// project only need small means (average transaction length ~10-30).
  uint64_t Poisson(double mean) {
    assert(mean >= 0);
    if (mean > 64.0) {
      double n = Normal(mean, std::sqrt(mean));
      return n <= 0 ? 0 : static_cast<uint64_t>(n + 0.5);
    }
    double limit = std::exp(-mean);
    uint64_t count = 0;
    double product = NextDouble();
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }

  /// Normally distributed value (Box–Muller).
  double Normal(double mean, double stddev) {
    double u1 = 1.0 - NextDouble();
    double u2 = NextDouble();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

 private:
  uint64_t state_[4];
};

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_RNG_H_
