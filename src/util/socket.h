// Minimal POSIX TCP helpers for the service layer (`bbsmined` daemon and
// the `bbsmine client` subcommand).
//
// Scope is deliberately small: IPv4 loopback/LAN stream sockets with
// blocking reads bounded by poll() timeouts. Everything reports failures
// as Status built from errno (util::StatusFromErrno), so socket errors
// read exactly like file errors elsewhere in the library.
//
// Ownership: the helpers traffic in raw fds wrapped in OwnedFd, a
// move-only RAII holder, so an early return can never leak a descriptor.

#ifndef BBSMINE_UTIL_SOCKET_H_
#define BBSMINE_UTIL_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace bbsmine {

/// Move-only owner of a file descriptor; closes it on destruction.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes the held descriptor (if any).
  void Reset();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to `host:port` (IPv4 dotted quad;
/// SO_REUSEADDR set). `port` 0 binds an ephemeral port; use BoundPort to
/// learn the assignment.
Result<OwnedFd> ListenTcp(const std::string& host, uint16_t port,
                          int backlog = 64);

/// The local port a socket is bound to (after ListenTcp with port 0).
Result<uint16_t> BoundPort(int fd);

/// Connects to `host:port`, waiting at most `timeout_ms` for the handshake
/// (-1 = the kernel default, which can be minutes against a blackholed
/// peer). The connect itself is non-blocking + poll, so a caller with a
/// deadline is never stalled by an unreachable host; the returned fd is
/// back in blocking mode. A timeout returns Unavailable.
Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port,
                           int timeout_ms = 10'000);

/// Accepts one connection. Waits up to `timeout_ms` (-1 = forever);
/// returns an invalid OwnedFd on timeout so pollers can check a stop flag.
Result<OwnedFd> AcceptWithTimeout(int listen_fd, int timeout_ms);

/// Writes all of `data`, retrying on short writes and EINTR.
Status SendAll(int fd, std::string_view data);

/// Reads exactly `n` bytes into `out` (resized). Waits up to `timeout_ms`
/// between reads (-1 = forever). A clean EOF before the first byte returns
/// NotFound ("peer closed"); a poll timeout returns Unavailable (callers
/// polling a stop flag re-issue the read); EOF mid-message is an IoError.
Status RecvExact(int fd, size_t n, std::string* out, int timeout_ms = -1);

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_SOCKET_H_
