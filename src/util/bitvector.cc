#include "util/bitvector.h"

#include <algorithm>
#include <cassert>

#include "util/bitvector_kernels.h"

namespace bbsmine {

BitVector::BitVector(size_t size, bool value)
    : words_((size + kWordBits - 1) / kWordBits,
             value ? ~Word{0} : Word{0}),
      size_(size) {
  MaskTail();
}

void BitVector::PushBack(bool value) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  if (value) words_.back() |= Word{1} << (size_ % kWordBits);
  ++size_;
}

void BitVector::Resize(size_t size) {
  size_t new_words = (size + kWordBits - 1) / kWordBits;
  words_.resize(new_words, 0);
  size_ = size;
  MaskTail();
}

void BitVector::AssignWords(const Word* words, size_t num_words, size_t size) {
  size_t needed = (size + kWordBits - 1) / kWordBits;
  assert(num_words >= needed);
  (void)num_words;
  words_.assign(words, words + needed);
  size_ = size;
  MaskTail();
}

void BitVector::Clear() {
  std::fill(words_.begin(), words_.end(), Word{0});
}

void BitVector::SetAll() {
  std::fill(words_.begin(), words_.end(), ~Word{0});
  MaskTail();
}

size_t BitVector::Count() const {
  return static_cast<size_t>(kernels::Count(words_.data(), words_.size()));
}

size_t BitVector::CountPrefix(size_t prefix_bits) const {
  assert(prefix_bits <= size_);
  size_t full_words = prefix_bits / kWordBits;
  size_t total = 0;
  for (size_t i = 0; i < full_words; ++i) {
    total += static_cast<size_t>(std::popcount(words_[i]));
  }
  size_t rem = prefix_bits % kWordBits;
  if (rem != 0) {
    Word mask = (Word{1} << rem) - 1;
    total += static_cast<size_t>(std::popcount(words_[full_words] & mask));
  }
  return total;
}

bool BitVector::None() const {
  for (Word w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void BitVector::AndWith(const BitVector& other) {
  assert(size_ == other.size_);
  kernels::AndWords(words_.data(), other.words_.data(), words_.size());
}

void BitVector::OrWith(const BitVector& other) {
  assert(size_ == other.size_);
  kernels::OrWords(words_.data(), other.words_.data(), words_.size());
}

void BitVector::AndNotWith(const BitVector& other) {
  assert(size_ == other.size_);
  kernels::AndNotWords(words_.data(), other.words_.data(), words_.size());
}

void BitVector::FlipAll() {
  for (Word& w : words_) w = ~w;
  MaskTail();
}

size_t BitVector::AndWithCount(const BitVector& other) {
  assert(size_ == other.size_);
  return static_cast<size_t>(
      kernels::AndCount(words_.data(), other.words_.data(), words_.size()));
}

size_t BitVector::AndWithCount(const Word* other_words, size_t num_words) {
  assert(num_words == words_.size());
  (void)num_words;
  return static_cast<size_t>(
      kernels::AndCount(words_.data(), other_words, words_.size()));
}

void BitVector::OrWithWords(const Word* other_words, size_t num_words) {
  assert(num_words == words_.size());
  (void)num_words;
  kernels::OrWords(words_.data(), other_words, words_.size());
}

size_t BitVector::AssignAndCount(const BitVector& a, const BitVector& b) {
  assert(a.size_ == b.size_);
  words_.resize(a.words_.size());
  size_ = a.size_;
  return static_cast<size_t>(kernels::AssignAndCount(
      words_.data(), a.words_.data(), b.words_.data(), words_.size()));
}

bool BitVector::Intersects(const BitVector& other) const {
  assert(size_ == other.size_);
  return kernels::Intersects(words_.data(), other.words_.data(),
                             words_.size());
}

bool BitVector::IsSubsetOf(const BitVector& other) const {
  assert(size_ == other.size_);
  return kernels::IsSubsetOf(words_.data(), other.words_.data(),
                             words_.size());
}

size_t BitVector::FindNext(size_t from) const {
  if (from >= size_) return npos;
  size_t word_idx = from / kWordBits;
  Word w = words_[word_idx] & (~Word{0} << (from % kWordBits));
  while (true) {
    if (w != 0) {
      size_t bit = word_idx * kWordBits +
                   static_cast<size_t>(std::countr_zero(w));
      return bit < size_ ? bit : npos;
    }
    if (++word_idx >= words_.size()) return npos;
    w = words_[word_idx];
  }
}

void BitVector::AppendSetBits(std::vector<uint32_t>* out) const {
  for (size_t word_idx = 0; word_idx < words_.size(); ++word_idx) {
    Word w = words_[word_idx];
    while (w != 0) {
      uint32_t bit = static_cast<uint32_t>(
          word_idx * kWordBits + static_cast<size_t>(std::countr_zero(w)));
      out->push_back(bit);
      w &= w - 1;
    }
  }
}

std::vector<uint32_t> BitVector::SetBits() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  AppendSetBits(&out);
  return out;
}

void BitVector::MaskTail() {
  size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

}  // namespace bbsmine
