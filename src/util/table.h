// Aligned text tables for the benchmark harness.
//
// Every figure-reproduction binary prints one of these tables (and optionally
// a CSV block) so that the series the paper plots can be read off directly.

#ifndef BBSMINE_UTIL_TABLE_H_
#define BBSMINE_UTIL_TABLE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace bbsmine {

/// A simple column-aligned table with a title, header row and data rows.
class ResultTable {
 public:
  explicit ResultTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; its width must match the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each cell with fixed precision.
  /// Strings pass through, doubles are formatted with `precision` decimals.
  static std::string Num(double value, int precision = 3);
  static std::string Int(long long value);

  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with aligned columns.
  void Print(std::ostream& out) const;

  /// Renders the table as CSV (header + rows), for plotting.
  void PrintCsv(std::ostream& out) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_TABLE_H_
