#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace bbsmine {

void ResultTable::SetHeader(std::vector<std::string> header) {
  assert(rows_.empty());
  header_ = std::move(header);
}

void ResultTable::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string ResultTable::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string ResultTable::Int(long long value) {
  return std::to_string(value);
}

void ResultTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
      out << (c + 1 < row.size() ? " | " : " |\n");
    }
  };

  size_t total = 4;
  for (size_t w : widths) total += w + 3;

  out << "\n== " << title_ << " ==\n";
  print_row(header_);
  out << std::string(total > 4 ? total - 4 : 0, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  out.flush();
}

void ResultTable::PrintCsv(std::ostream& out) const {
  auto print_csv_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  };
  out << "# csv: " << title_ << "\n";
  print_csv_row(header_);
  for (const auto& row : rows_) print_csv_row(row);
  out.flush();
}

}  // namespace bbsmine
