// A std::allocator drop-in with a guaranteed minimum alignment.
//
// BitVector stores its words through this with 64-byte alignment so every
// slice starts on a cache-line (and full AVX-512 vector) boundary; the
// kernels still use unaligned loads, so alignment is a throughput hint,
// never a correctness requirement.

#ifndef BBSMINE_UTIL_ALIGNED_ALLOCATOR_H_
#define BBSMINE_UTIL_ALIGNED_ALLOCATOR_H_

#include <cstddef>
#include <new>

namespace bbsmine {

template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T),
                "Alignment must not be weaker than alignof(T)");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }
};

template <typename T, typename U, std::size_t A>
bool operator==(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) {
  return true;
}

template <typename T, typename U, std::size_t A>
bool operator!=(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) {
  return false;
}

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_ALIGNED_ALLOCATOR_H_
