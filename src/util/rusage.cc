#include "util/rusage.h"

#include <sys/resource.h>

namespace bbsmine {

PageFaultCounters CurrentPageFaults() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return {};
  return {static_cast<uint64_t>(usage.ru_minflt),
          static_cast<uint64_t>(usage.ru_majflt)};
}

}  // namespace bbsmine
