#include "util/fault_injector.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace bbsmine {

namespace {

struct FaultRule {
  bool fails = false;        // any of fail_after/err/short_write was given
  uint64_t fail_after = 0;   // hits 1..fail_after succeed, later ones fail
  int error_number = EIO;
  bool has_short_write = false;
  size_t short_write = 0;
  bool has_crash_after = false;
  uint64_t crash_after = 0;
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, FaultRule> rules;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: alive at exit
  return *registry;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ErrnoByName(const std::string& name, int* out) {
  static const struct {
    const char* name;
    int value;
  } kNames[] = {
      {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EACCES", EACCES},
      {"ENOENT", ENOENT}, {"EEXIST", EEXIST}, {"EMFILE", EMFILE},
      {"EROFS", EROFS},   {"EINTR", EINTR},   {"EDQUOT", EDQUOT},
      {"EPERM", EPERM},   {"EBADF", EBADF},
  };
  for (const auto& entry : kNames) {
    if (name == entry.name) {
      *out = entry.value;
      return true;
    }
  }
  uint64_t numeric = 0;
  if (ParseU64(name, &numeric) && numeric > 0 && numeric < 4096) {
    *out = static_cast<int>(numeric);
    return true;
  }
  return false;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

Status ParseSpec(const std::string& spec,
                 std::map<std::string, FaultRule>* out) {
  for (const std::string& point_spec : Split(spec, ';')) {
    if (point_spec.empty()) continue;
    size_t colon = point_spec.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("fault spec missing 'point:' in \"" +
                                     point_spec + "\"");
    }
    std::string point = point_spec.substr(0, colon);
    FaultRule rule;
    for (const std::string& action : Split(point_spec.substr(colon + 1), ',')) {
      if (action.empty()) continue;
      size_t eq = action.find('=');
      std::string key = action.substr(0, eq);
      std::string value =
          eq == std::string::npos ? std::string() : action.substr(eq + 1);
      if (key == "fail_after") {
        if (!ParseU64(value, &rule.fail_after)) {
          return Status::InvalidArgument("bad fail_after in \"" + action +
                                         "\"");
        }
        rule.fails = true;
      } else if (key == "err") {
        if (!ErrnoByName(value, &rule.error_number)) {
          return Status::InvalidArgument("unknown errno name \"" + value +
                                         "\"");
        }
        rule.fails = true;
      } else if (key == "short_write") {
        uint64_t bytes = 0;
        if (!ParseU64(value, &bytes)) {
          return Status::InvalidArgument("bad short_write in \"" + action +
                                         "\"");
        }
        rule.short_write = static_cast<size_t>(bytes);
        rule.has_short_write = true;
        rule.fails = true;
      } else if (key == "crash_after") {
        if (!ParseU64(value, &rule.crash_after)) {
          return Status::InvalidArgument("bad crash_after in \"" + action +
                                         "\"");
        }
        rule.has_crash_after = true;
      } else {
        return Status::InvalidArgument("unknown fault action \"" + key + "\"");
      }
    }
    (*out)[point] = rule;
  }
  return Status::Ok();
}

// Parses BBSMINE_FAULTS before main so daemons launched by crash tests are
// armed from their very first I/O call.
struct EnvArmer {
  EnvArmer() { FaultInjector::ArmFromEnvironment(); }
};
EnvArmer env_armer;

}  // namespace

std::atomic<bool> FaultInjector::armed_{false};
std::atomic<void (*)()> FaultInjector::crash_hook_{nullptr};

void FaultInjector::SetCrashHook(void (*hook)()) {
  crash_hook_.store(hook, std::memory_order_release);
}

Status FaultInjector::Arm(const std::string& spec) {
  std::map<std::string, FaultRule> rules;
  BBSMINE_RETURN_IF_ERROR(ParseSpec(spec, &rules));
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.rules = std::move(rules);
  armed_.store(!registry.rules.empty(), std::memory_order_relaxed);
  return Status::Ok();
}

void FaultInjector::Disarm() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.rules.clear();
  armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::ArmFromEnvironment() {
  const char* spec = std::getenv("BBSMINE_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  Status status = Arm(spec);
  if (!status.ok()) {
    std::fprintf(stderr, "fatal: BBSMINE_FAULTS: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

uint64_t FaultInjector::HitCount(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.rules.find(point);
  return it == registry.rules.end() ? 0 : it->second.hits;
}

Status FaultInjector::HitSlow(const char* point, size_t want,
                              size_t* allowed) {
  Registry& registry = GetRegistry();
  std::unique_lock<std::mutex> lock(registry.mu);
  auto it = registry.rules.find(point);
  if (it == registry.rules.end()) return Status::Ok();
  FaultRule& rule = it->second;
  ++rule.hits;
  if (rule.has_crash_after && rule.hits > rule.crash_after) {
    // A crash-point: die exactly here, like kill -9 would. 137 = 128+SIGKILL,
    // so harnesses treat it like a real kill. The crash hook (if any) runs
    // first, outside the registry lock — it may do I/O that consults other
    // fault points, so exchanging it to null guards against recursion.
    lock.unlock();
    if (void (*hook)() = crash_hook_.exchange(nullptr); hook != nullptr) {
      hook();
    }
    std::fflush(nullptr);
    std::_Exit(137);
  }
  // A crash-only rule (no fail_after/err/short_write) succeeds until the
  // crash boundary — it models a kill -9, not a flaky disk.
  if (!rule.fails) return Status::Ok();
  if (rule.hits <= rule.fail_after) return Status::Ok();
  if (allowed != nullptr && rule.has_short_write) {
    *allowed = rule.short_write < want ? rule.short_write : want;
  }
  return StatusFromErrno(rule.error_number, std::string("fault injected at ") +
                                                point);
}

}  // namespace bbsmine
