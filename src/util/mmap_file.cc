#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace bbsmine {

Result<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return StatusFromErrno("open " + path);

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = StatusFromErrno("fstat " + path);
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);

  uint8_t* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      Status status = StatusFromErrno("mmap " + path);
      ::close(fd);
      return status;
    }
    data = static_cast<uint8_t*>(mapped);
  }
  ::close(fd);
  return std::shared_ptr<MmapFile>(new MmapFile(path, data, size));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

void MmapFile::Advise(size_t offset, size_t length, int advice) const {
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  length = std::min(length, size_ - offset);
  // Widen to page boundaries: madvise requires a page-aligned start.
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t begin = offset / page * page;
  const size_t end = offset + length;
  (void)::madvise(data_ + begin, end - begin, advice);
}

void MmapFile::AdviseSequential(size_t offset, size_t length) const {
  Advise(offset, length, MADV_SEQUENTIAL);
}

void MmapFile::AdviseWillNeed(size_t offset, size_t length) const {
  Advise(offset, length, MADV_WILLNEED);
}

void MmapFile::AdviseRandom(size_t offset, size_t length) const {
  Advise(offset, length, MADV_RANDOM);
}

void MmapFile::AdviseDontNeed(size_t offset, size_t length) const {
  Advise(offset, length, MADV_DONTNEED);
}

}  // namespace bbsmine
