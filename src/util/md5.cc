#include "util/md5.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace bbsmine {
namespace {

// Per-round shift amounts (RFC 1321, section 3.4).
constexpr uint32_t kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

Md5::Md5() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
}

void Md5::ProcessBlock(const uint8_t block[64]) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = LoadLe32(block + 4 * i);

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (uint32_t i = 0; i < 64; ++i) {
    uint32_t f;
    uint32_t g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t tmp = d;
    d = c;
    c = b;
    b += std::rotl(a + f + kSine[i] + m[g], static_cast<int>(kShift[i]));
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::Update(const void* data, size_t len) {
  assert(!finished_);
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;

  if (buffer_len_ > 0) {
    size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Md5Digest Md5::Finish() {
  assert(!finished_);
  finished_ = true;

  uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80 then zeros until 8 bytes remain in the block.
  static constexpr uint8_t kPad[64] = {0x80};
  size_t pad_len = (buffer_len_ < 56) ? 56 - buffer_len_ : 120 - buffer_len_;
  finished_ = false;  // allow the padding Updates below
  Update(kPad, pad_len);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  Update(len_bytes, 8);
  finished_ = true;
  assert(buffer_len_ == 0);

  Md5Digest digest;
  for (int i = 0; i < 4; ++i) StoreLe32(digest.data() + 4 * i, state_[i]);
  return digest;
}

Md5Digest Md5::Hash(std::string_view s) {
  Md5 md5;
  md5.Update(s);
  return md5.Finish();
}

std::string Md5::ToHex(const Md5Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace bbsmine
