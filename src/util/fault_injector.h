// Deterministic fault injection for I/O paths.
//
// Durability code is dominated by branches that almost never run in
// production: ENOSPC mid-write, a crash between rename and fsync, a torn
// record at the WAL tail. Testing those branches by hoping the environment
// misbehaves is not a strategy, so every file_io / WAL / checkpoint
// operation consults a named *fault point* first, and a process-wide
// registry — parsed once from the BBSMINE_FAULTS environment variable or
// armed programmatically by tests — decides whether that particular call
// fails, short-writes, or terminates the process at an exact boundary.
//
// Spec grammar (BBSMINE_FAULTS or FaultInjector::Arm):
//
//   spec       := point_spec (';' point_spec)*
//   point_spec := point ':' action (',' action)*
//   action     := 'fail_after' '=' N    first N hits succeed, later ones fail
//              |  'err' '=' NAME        errno reported on failure (EIO, ENOSPC,
//                                       EACCES, ...; default EIO)
//              |  'short_write' '=' K   failing write hits persist only the
//                                       first K bytes before reporting err
//              |  'crash_after' '=' N   hit N+1 calls _Exit(137) instead of
//                                       returning — a kill -9 at that boundary
//
// Example: BBSMINE_FAULTS="wal.append:fail_after=3;checkpoint.rename:err=EIO"
// lets three WAL appends through, fails every later one with EIO, and fails
// every checkpoint manifest rename immediately.
//
// Cost when disarmed: one relaxed atomic load per fault point (the
// registry is consulted only when armed), so production binaries pay
// nothing measurable — the micro_bbs instrumentation gate covers this.
//
// Thread safety: Hit/HitWrite may be called from any thread. Arm/Disarm
// must not race with hits (tests arm before starting I/O).

#ifndef BBSMINE_UTIL_FAULT_INJECTOR_H_
#define BBSMINE_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace bbsmine {

class FaultInjector {
 public:
  /// True when any fault spec is armed. One relaxed atomic load; the fast
  /// path for every fault point.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// Replaces the active spec (see the grammar above). An empty spec
  /// disarms. Returns InvalidArgument on a malformed spec. Hit counters
  /// reset.
  static Status Arm(const std::string& spec);

  /// Removes all fault points and clears hit counters.
  static void Disarm();

  /// Arms from the BBSMINE_FAULTS environment variable if set. Called once
  /// at process start (from a static initializer); safe to call again. A
  /// malformed env spec aborts the process — silently ignoring it would
  /// turn a fault-injection run into a plain run.
  static void ArmFromEnvironment();

  /// Consults the registry for `point` and counts the hit. Returns OK
  /// unless this hit is configured to fail; a crash_after boundary calls
  /// _Exit(137) and does not return.
  static Status Hit(const char* point) {
    if (!Armed()) return Status::Ok();
    return HitSlow(point, /*want=*/0, /*allowed=*/nullptr);
  }

  /// Hit() for write-shaped points: on a failing hit with short_write=K,
  /// *allowed is set to min(K, want) so the caller can persist a torn
  /// prefix before reporting the error. On success *allowed == want.
  static Status HitWrite(const char* point, size_t want, size_t* allowed) {
    *allowed = want;
    if (!Armed()) return Status::Ok();
    return HitSlow(point, want, allowed);
  }

  /// Number of times `point` was consulted since the last Arm/Disarm.
  /// Testing / diagnostics only.
  static uint64_t HitCount(const std::string& point);

  /// Registers a hook run once, right before a crash_after boundary calls
  /// _Exit(137) — the daemon uses it to dump the flight recorder so the
  /// post-mortem artifact exists for exactly the runs that die mid-write.
  /// The hook runs with the fault registry unlocked and re-entry guarded
  /// (a hook that itself trips fault points will not recurse). Pass
  /// nullptr to clear. Not thread-safe against concurrent crashes by
  /// design: the process is dying either way.
  static void SetCrashHook(void (*hook)());

 private:
  static Status HitSlow(const char* point, size_t want, size_t* allowed);

  static std::atomic<bool> armed_;
  static std::atomic<void (*)()> crash_hook_;
};

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_FAULT_INJECTOR_H_
