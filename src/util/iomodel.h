// Explicit I/O cost accounting.
//
// The paper evaluates on a 167 MHz SUN Ultra 1 with 64 MB of memory, where
// disk I/O dominates the response time of scan-heavy algorithms. Modern
// machines with page caches hide that cost, so this reproduction *accounts*
// for I/O explicitly: every component that would touch disk (database scans,
// BBS slice reads, probes, FP-tree construction scans) charges block reads /
// writes to an IoStats, and the benchmark harness converts the counters into
// simulated seconds with an IoCostParams describing a paper-era disk. This
// substitution preserves the relative shapes of the paper's figures (who
// scans more, who probes, who re-reads) without requiring the original
// hardware.

#ifndef BBSMINE_UTIL_IOMODEL_H_
#define BBSMINE_UTIL_IOMODEL_H_

#include <cstdint>
#include <string>

namespace bbsmine {

/// Counters for simulated block I/O.
struct IoStats {
  /// Blocks read as part of a sequential scan (amortized seek).
  uint64_t sequential_reads = 0;
  /// Blocks read at random positions (seek per read), e.g. probes.
  uint64_t random_reads = 0;
  /// Blocks written (always counted as sequential appends here).
  uint64_t writes = 0;
  /// Instrumentation (not billed as I/O time): 64-bit slice words actually
  /// streamed by the blocked CountItemSet AND loop. Lets tests and benches
  /// observe that the per-block early-abort stops before touching all
  /// words.
  uint64_t slice_words_touched = 0;

  void Reset() { *this = IoStats{}; }

  uint64_t TotalReads() const { return sequential_reads + random_reads; }

  IoStats& operator+=(const IoStats& other) {
    sequential_reads += other.sequential_reads;
    random_reads += other.random_reads;
    writes += other.writes;
    slice_words_touched += other.slice_words_touched;
    return *this;
  }

  bool operator==(const IoStats& other) const {
    return sequential_reads == other.sequential_reads &&
           random_reads == other.random_reads && writes == other.writes &&
           slice_words_touched == other.slice_words_touched;
  }

  std::string ToString() const;
};

/// Cost parameters of the simulated storage device.
struct IoCostParams {
  /// Block (page) size in bytes used by all on-"disk" structures.
  uint32_t block_size = 4096;
  /// Time to transfer one block sequentially, in milliseconds.
  double sequential_block_ms = 0.4;
  /// Time for a random block read (seek + rotation + transfer), in ms.
  double random_block_ms = 10.0;
  /// Time to append one block, in milliseconds.
  double write_block_ms = 0.5;

  /// Parameters approximating a late-1990s SCSI disk, as in the paper's
  /// hardware generation.
  static IoCostParams PaperEraDisk() { return IoCostParams{}; }
};

/// Converts I/O counters into simulated elapsed seconds.
double SimulatedIoSeconds(const IoStats& stats, const IoCostParams& params);

/// Number of blocks needed to hold `bytes` bytes with the given block size.
inline uint64_t BlocksFor(uint64_t bytes, uint32_t block_size) {
  return (bytes + block_size - 1) / block_size;
}

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_IOMODEL_H_
