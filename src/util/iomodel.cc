#include "util/iomodel.h"

#include <sstream>

namespace bbsmine {

std::string IoStats::ToString() const {
  std::ostringstream out;
  out << "IoStats{seq_reads=" << sequential_reads
      << ", rand_reads=" << random_reads << ", writes=" << writes
      << ", slice_words=" << slice_words_touched << "}";
  return out.str();
}

double SimulatedIoSeconds(const IoStats& stats, const IoCostParams& params) {
  double ms = static_cast<double>(stats.sequential_reads) *
                  params.sequential_block_ms +
              static_cast<double>(stats.random_reads) * params.random_block_ms +
              static_cast<double>(stats.writes) * params.write_block_ms;
  return ms / 1e3;
}

}  // namespace bbsmine
