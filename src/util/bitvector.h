// A dynamically sized bit vector with word-parallel bulk operations.
//
// BitVector is the workhorse of the BBS index: every bit-slice of the
// signature file is a BitVector of length N (one bit per transaction), and
// CountItemSet reduces to in-place AND + popcount over slices. The
// implementation therefore optimizes for:
//   * fast AndWith / popcount over 64-bit words,
//   * cheap append (the index grows one transaction at a time),
//   * iteration over set bits (the Probe refinement walks result vectors).

#ifndef BBSMINE_UTIL_BITVECTOR_H_
#define BBSMINE_UTIL_BITVECTOR_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned_allocator.h"

namespace bbsmine {

/// A growable vector of bits backed by 64-bit words.
///
/// Bits beyond size() inside the last word are maintained as zero, so bulk
/// word operations (AND, OR, popcount) never need per-bit masking.
///
/// All bulk operations dispatch through the runtime-selected SIMD kernels
/// (util/bitvector_kernels.h); the backing words are 64-byte aligned so
/// every vector starts on a cache-line boundary.
class BitVector {
 public:
  using Word = uint64_t;
  static constexpr size_t kWordBits = 64;
  /// Cache-line / AVX-512-vector alignment of the backing words.
  static constexpr size_t kWordAlignment = 64;
  using WordVector = std::vector<Word, AlignedAllocator<Word, kWordAlignment>>;

  /// Constructs an empty bit vector.
  BitVector() = default;

  /// Constructs a vector of `size` bits, all initialized to `value`.
  explicit BitVector(size_t size, bool value = false);

  /// Number of bits.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of backing words (ceil(size / 64)).
  size_t num_words() const { return words_.size(); }

  /// Read-only access to the backing words, for serialization and bulk math.
  const WordVector& words() const { return words_; }

  /// Mutable word storage for kernel-driven bulk math (the BBS index's
  /// blocked CountWithSeed writes AND results straight into it). Callers
  /// must preserve the invariant that bits past size() stay zero.
  Word* MutableWords() { return words_.data(); }

  /// Returns bit `i`. Precondition: i < size().
  bool Get(size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  /// Sets bit `i` to `value`. Precondition: i < size().
  void Set(size_t i, bool value = true) {
    Word mask = Word{1} << (i % kWordBits);
    if (value) {
      words_[i / kWordBits] |= mask;
    } else {
      words_[i / kWordBits] &= ~mask;
    }
  }

  /// Appends one bit at the end, growing the vector by one.
  void PushBack(bool value);

  /// Grows (or shrinks) to `size` bits; new bits are zero.
  void Resize(size_t size);

  /// Replaces the contents with `size` bits copied word-wise from `words`
  /// (bit i lives at words[i / 64] >> (i % 64), the same layout words()
  /// exposes). `num_words` must be at least ceil(size / 64); excess words
  /// and bits past `size` in the last word are ignored. O(words), the bulk
  /// counterpart of building the vector one Set() at a time.
  void AssignWords(const Word* words, size_t num_words, size_t size);

  /// Sets every bit to zero without changing the size.
  void Clear();

  /// Sets every bit to one.
  void SetAll();

  /// Number of set bits.
  size_t Count() const;

  /// Number of set bits among the first `prefix_bits` bits.
  /// Precondition: prefix_bits <= size().
  size_t CountPrefix(size_t prefix_bits) const;

  /// True if no bit is set.
  bool None() const;

  /// In-place AND with `other`. Both vectors must have the same size.
  void AndWith(const BitVector& other);

  /// In-place OR with `other`. Both vectors must have the same size.
  void OrWith(const BitVector& other);

  /// In-place AND-NOT (this &= ~other). Both vectors must have the same size.
  void AndNotWith(const BitVector& other);

  /// Flips every bit (trailing bits in the last word stay zero).
  void FlipAll();

  /// In-place AND with `other`, returning the popcount of the result.
  /// Fuses the two passes of AndWith + Count into one.
  size_t AndWithCount(const BitVector& other);

  /// Word-span overload for slices served by a non-resident backend
  /// (core/slice_source.h). `num_words` must equal num_words(); bits past
  /// size() in the span's last word must be zero.
  size_t AndWithCount(const Word* other_words, size_t num_words);

  /// Word-span OR, same contract as the AndWithCount overload above.
  void OrWithWords(const Word* other_words, size_t num_words);

  /// Three-operand fused op: *this = a & b, returning the popcount of the
  /// result. Replaces the copy-then-AndWithCount two-pass pattern in the
  /// filter walk. `a` and `b` must have the same size; either may alias
  /// *this.
  size_t AssignAndCount(const BitVector& a, const BitVector& b);

  /// True if (this & other) has at least one set bit. Early-exits.
  bool Intersects(const BitVector& other) const;

  /// True iff every set bit of this vector is also set in `other`.
  bool IsSubsetOf(const BitVector& other) const;

  /// Index of the first set bit at position >= `from`, or npos if none.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t FindNext(size_t from) const;

  /// Appends the index of every set bit to `out`.
  void AppendSetBits(std::vector<uint32_t>* out) const;

  /// Returns the indices of all set bits.
  std::vector<uint32_t> SetBits() const;

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Approximate heap memory used, in bytes.
  size_t MemoryUsage() const { return words_.capacity() * sizeof(Word); }

 private:
  /// Zeroes bits at positions >= size_ in the last word.
  void MaskTail();

  WordVector words_;
  size_t size_ = 0;
};

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_BITVECTOR_H_
