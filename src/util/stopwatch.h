// Wall-clock timing helper for the benchmark harness.

#ifndef BBSMINE_UTIL_STOPWATCH_H_
#define BBSMINE_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace bbsmine {

/// Measures elapsed wall-clock time with steady_clock resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_STOPWATCH_H_
