#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace bbsmine {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    max_queue_depth_ = std::max<uint64_t>(max_queue_depth_, queue_.size());
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t tasks = std::min(num_threads(), n);
  for (size_t t = 0; t < tasks; ++t) {
    Submit([next, n, &body] {
      for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
           i = next->fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    });
  }
  Wait();
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& body,
                 uint64_t* max_queue_depth) {
  size_t threads = std::min(ResolveThreads(num_threads), n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(threads);
  pool.ParallelFor(n, body);
  if (max_queue_depth != nullptr) {
    *max_queue_depth = std::max(*max_queue_depth, pool.max_queue_depth());
  }
}

size_t ResolveThreads(size_t num_threads) {
  if (num_threads == 0) return ThreadPool::DefaultThreads();
  return num_threads;
}

}  // namespace bbsmine
