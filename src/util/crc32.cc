#include "util/crc32.h"

#include <array>

namespace bbsmine {
namespace {

constexpr uint32_t kPolynomial = 0xedb88320u;  // reflected IEEE 802.3

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xffu];
  }
  return ~crc;
}

}  // namespace bbsmine
