// AVX2 kernels: 256-bit AND/OR/ANDNOT with a Harley-Seal carry-save
// popcount (Muła, Kurz, Lemire, "Faster Population Counts Using AVX2
// Instructions") fused into the same pass, so and_count / assign_and_count
// touch each word exactly once.
//
// This TU is compiled with -mavx2 (see src/util/CMakeLists.txt); nothing in
// it may run unless the dispatcher verified AVX2 support at startup.

#include "util/bitvector_kernels.h"

#if defined(BBSMINE_HAVE_KERNEL_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

namespace bbsmine {
namespace kernels {
namespace {

constexpr size_t kWordsPerVec = 4;  // 256 bits

inline __m256i Load(const Word* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void Store(Word* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Per-64-bit-lane popcount of a 256-bit vector via the nibble-lookup
/// (vpshufb) trick, horizontally summed into u64 lanes by vpsadbw.
inline __m256i Popcount256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/// Carry-save adder: (h, l) = full add of the bit-columns a + b + c.
inline void CSA(__m256i* h, __m256i* l, __m256i a, __m256i b, __m256i c) {
  __m256i u = _mm256_xor_si256(a, b);
  *h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  *l = _mm256_xor_si256(u, c);
}

inline uint64_t HorizontalSum(__m256i v) {
  return static_cast<uint64_t>(_mm256_extract_epi64(v, 0)) +
         static_cast<uint64_t>(_mm256_extract_epi64(v, 1)) +
         static_cast<uint64_t>(_mm256_extract_epi64(v, 2)) +
         static_cast<uint64_t>(_mm256_extract_epi64(v, 3));
}

/// Harley-Seal popcount over n_vecs 256-bit vectors, where produce(i)
/// yields vector i (loading it and, for the fused ops, ANDing/storing it
/// in the same breath). 16 vectors per CSA iteration.
template <typename Producer>
inline uint64_t CsaCount(size_t n_vecs, Producer produce) {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  __m256i sixteens;
  __m256i twosA, twosB, foursA, foursB, eightsA, eightsB;

  size_t i = 0;
  for (; i + 16 <= n_vecs; i += 16) {
    CSA(&twosA, &ones, ones, produce(i + 0), produce(i + 1));
    CSA(&twosB, &ones, ones, produce(i + 2), produce(i + 3));
    CSA(&foursA, &twos, twos, twosA, twosB);
    CSA(&twosA, &ones, ones, produce(i + 4), produce(i + 5));
    CSA(&twosB, &ones, ones, produce(i + 6), produce(i + 7));
    CSA(&foursB, &twos, twos, twosA, twosB);
    CSA(&eightsA, &fours, fours, foursA, foursB);
    CSA(&twosA, &ones, ones, produce(i + 8), produce(i + 9));
    CSA(&twosB, &ones, ones, produce(i + 10), produce(i + 11));
    CSA(&foursA, &twos, twos, twosA, twosB);
    CSA(&twosA, &ones, ones, produce(i + 12), produce(i + 13));
    CSA(&twosB, &ones, ones, produce(i + 14), produce(i + 15));
    CSA(&foursB, &twos, twos, twosA, twosB);
    CSA(&eightsB, &fours, fours, foursA, foursB);
    CSA(&sixteens, &eights, eights, eightsA, eightsB);
    total = _mm256_add_epi64(total, Popcount256(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(eights), 3));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(twos), 1));
  total = _mm256_add_epi64(total, Popcount256(ones));
  for (; i < n_vecs; ++i) {
    total = _mm256_add_epi64(total, Popcount256(produce(i)));
  }
  return HorizontalSum(total);
}

uint64_t Avx2Count(const Word* w, size_t n) {
  size_t n_vecs = n / kWordsPerVec;
  uint64_t total =
      CsaCount(n_vecs, [&](size_t i) { return Load(w + i * kWordsPerVec); });
  for (size_t i = n_vecs * kWordsPerVec; i < n; ++i) {
    total += static_cast<uint64_t>(std::popcount(w[i]));
  }
  return total;
}

void Avx2AndWords(Word* dst, const Word* src, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    Store(dst + i, _mm256_and_si256(Load(dst + i), Load(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

uint64_t Avx2AndCount(Word* dst, const Word* src, size_t n) {
  size_t n_vecs = n / kWordsPerVec;
  uint64_t total = CsaCount(n_vecs, [&](size_t i) {
    __m256i v = _mm256_and_si256(Load(dst + i * kWordsPerVec),
                                 Load(src + i * kWordsPerVec));
    Store(dst + i * kWordsPerVec, v);
    return v;
  });
  for (size_t i = n_vecs * kWordsPerVec; i < n; ++i) {
    dst[i] &= src[i];
    total += static_cast<uint64_t>(std::popcount(dst[i]));
  }
  return total;
}

uint64_t Avx2AssignAndCount(Word* dst, const Word* a, const Word* b,
                            size_t n) {
  size_t n_vecs = n / kWordsPerVec;
  uint64_t total = CsaCount(n_vecs, [&](size_t i) {
    __m256i v = _mm256_and_si256(Load(a + i * kWordsPerVec),
                                 Load(b + i * kWordsPerVec));
    Store(dst + i * kWordsPerVec, v);
    return v;
  });
  for (size_t i = n_vecs * kWordsPerVec; i < n; ++i) {
    dst[i] = a[i] & b[i];
    total += static_cast<uint64_t>(std::popcount(dst[i]));
  }
  return total;
}

void Avx2OrWords(Word* dst, const Word* src, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    Store(dst + i, _mm256_or_si256(Load(dst + i), Load(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void Avx2AndNotWords(Word* dst, const Word* src, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    // vpandn computes ~first & second.
    Store(dst + i, _mm256_andnot_si256(Load(src + i), Load(dst + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

bool Avx2Intersects(const Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    if (!_mm256_testz_si256(Load(a + i), Load(b + i))) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool Avx2IsSubsetOf(const Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    // testc(b, a) checks (~b & a) == 0, i.e. a ⊆ b on this vector.
    if (!_mm256_testc_si256(Load(b + i), Load(a + i))) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

constexpr size_t kAndManyBlockWords = 512;  // 4 KiB per operand stream

uint64_t Avx2AndManyCount(Word* dst, const Word* const* srcs, size_t k,
                          size_t n) {
  if (k == 1) {
    std::memcpy(dst, srcs[0], n * sizeof(Word));
    return Avx2Count(dst, n);
  }
  uint64_t total = 0;
  for (size_t base = 0; base < n; base += kAndManyBlockWords) {
    size_t len = std::min(kAndManyBlockWords, n - base);
    uint64_t block =
        Avx2AssignAndCount(dst + base, srcs[0] + base, srcs[1] + base, len);
    for (size_t op = 2; op < k && block != 0; ++op) {
      block = Avx2AndCount(dst + base, srcs[op] + base, len);
    }
    total += block;
  }
  return total;
}

const KernelOps kAvx2Ops = {
    .name = "avx2",
    .count = Avx2Count,
    .and_words = Avx2AndWords,
    .and_count = Avx2AndCount,
    .assign_and_count = Avx2AssignAndCount,
    .or_words = Avx2OrWords,
    .andnot_words = Avx2AndNotWords,
    .intersects = Avx2Intersects,
    .is_subset_of = Avx2IsSubsetOf,
    .and_many_count = Avx2AndManyCount,
};

}  // namespace

namespace internal {
const KernelOps* Avx2Kernels() { return &kAvx2Ops; }
}  // namespace internal

}  // namespace kernels
}  // namespace bbsmine

#endif  // BBSMINE_HAVE_KERNEL_AVX2
