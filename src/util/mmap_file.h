// Read-only memory-mapped files.
//
// MmapFile is the substrate of the mmap slice backend (core/slice_source.h):
// a sealed index file is mapped once and its 64-byte-aligned slice arrays are
// handed to the SIMD kernels directly, so serving cost is page-cache
// residency, not heap bytes. The mapping is shared (shared_ptr) between every
// index clone that serves the same file, and madvise wrappers let callers
// hint sequential scans / drop pages without owning the raw pointers.

#ifndef BBSMINE_UTIL_MMAP_FILE_H_
#define BBSMINE_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace bbsmine {

/// An immutable byte range backed by a private read-only file mapping.
class MmapFile {
 public:
  /// Maps `path` read-only. The file descriptor is closed before returning;
  /// the mapping stays valid until the MmapFile is destroyed. An empty file
  /// yields data() == nullptr, size() == 0 (no mapping is created).
  static Result<std::shared_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  // Best-effort page-residency hints over [offset, offset + length). The
  // range is widened to page boundaries; errors are ignored (hints only).
  void AdviseSequential(size_t offset, size_t length) const;
  void AdviseWillNeed(size_t offset, size_t length) const;
  void AdviseRandom(size_t offset, size_t length) const;
  /// Drops the range's page-table entries (and, for private mappings, any
  /// resident copies). Used by benchmarks to measure a cold read path.
  void AdviseDontNeed(size_t offset, size_t length) const;

 private:
  MmapFile(std::string path, uint8_t* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  void Advise(size_t offset, size_t length, int advice) const;

  std::string path_;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_MMAP_FILE_H_
