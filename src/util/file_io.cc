#include "util/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "util/fault_injector.h"

namespace bbsmine {

namespace {

// Composes "<prefix>.<op>" and consults the fault registry. The string is
// only built when a spec is armed, so the production path stays one relaxed
// atomic load.
Status Fault(const char* prefix, const char* op) {
  if (!FaultInjector::Armed()) return Status::Ok();
  return FaultInjector::Hit((std::string(prefix) + "." + op).c_str());
}

Status FaultWrite(const char* prefix, size_t want, size_t* allowed) {
  *allowed = want;
  if (!FaultInjector::Armed()) return Status::Ok();
  return FaultInjector::HitWrite((std::string(prefix) + ".write").c_str(),
                                 want, allowed);
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& context) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return StatusFromErrno("write failed: " + context);
    }
    if (n == 0) return Status::IoError("zero-byte write: " + context);
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Best-effort fsync of the directory containing `path`, making the rename
// itself durable. Failures are ignored: some filesystems reject directory
// fsync with EINVAL, and the file data is already synced.
void SyncParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

// Non-atomic fallback for non-regular destinations (character devices,
// FIFOs: /dev/null, /dev/full). rename(2) over a device node would replace
// the node with a regular file, so these are written in place; error
// surfacing (ENOSPC on /dev/full) is unchanged.
Status WriteSpecialFile(const std::string& path, std::string_view data,
                        const WriteFileOptions& options) {
  BBSMINE_RETURN_IF_ERROR(Fault(options.fault_point, "open"));
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return StatusFromErrno("cannot open for writing: " + path);
  }
  size_t allowed = data.size();
  Status injected = FaultWrite(options.fault_point, data.size(), &allowed);
  Status status = WriteAll(fd, data.data(), allowed, path);
  if (status.ok() && !injected.ok()) status = injected;
  ::close(fd);
  return status;
}

}  // namespace

Status WriteBinaryFile(const std::string& path, std::string_view data,
                       const WriteFileOptions& options) {
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0 && !S_ISREG(st.st_mode)) {
    return WriteSpecialFile(path, data, options);
  }

  const std::string tmp = path + ".tmp";
  BBSMINE_RETURN_IF_ERROR(Fault(options.fault_point, "open"));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return StatusFromErrno("cannot open for writing: " + tmp);
  }

  // On any failure below: close, unlink the temp file, and report. The
  // destination is untouched.
  Status status;
  size_t allowed = data.size();
  Status injected = FaultWrite(options.fault_point, data.size(), &allowed);
  status = WriteAll(fd, data.data(), allowed, tmp);
  if (status.ok() && !injected.ok()) status = injected;

  if (status.ok() && options.sync) {
    status = Fault(options.fault_point, "fsync");
    if (status.ok() && ::fsync(fd) != 0) {
      status = StatusFromErrno("fsync failed: " + tmp);
    }
  }

  if (::close(fd) != 0 && status.ok()) {
    status = StatusFromErrno("close failed: " + tmp);
  }

  if (status.ok()) {
    status = Fault(options.fault_point, "rename");
    if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
      status = StatusFromErrno("rename failed: " + tmp + " -> " + path);
    }
  }

  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (options.sync) SyncParentDirectory(path);
  return Status::Ok();
}

Result<std::string> ReadBinaryFile(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) {
    return StatusFromErrno("cannot open for reading: " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  errno = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
    data.append(buf, n);
  }
  bool read_error = std::ferror(fp) != 0;
  int read_errno = errno;
  std::fclose(fp);
  if (read_error) {
    return StatusFromErrno(read_errno, "read error: " + path);
  }
  return data;
}

}  // namespace bbsmine
