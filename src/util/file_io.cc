#include "util/file_io.h"

#include <cerrno>
#include <cstdio>

namespace bbsmine {

Status WriteBinaryFile(const std::string& path, std::string_view data) {
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (fp == nullptr) {
    return StatusFromErrno("cannot open for writing: " + path);
  }
  errno = 0;
  bool ok = data.empty() ||
            std::fwrite(data.data(), 1, data.size(), fp) == data.size();
  // fwrite may buffer; a full disk often only surfaces at flush/close time.
  ok = std::fflush(fp) == 0 && ok;
  int write_errno = errno;
  ok = std::fclose(fp) == 0 && ok;
  if (!ok) {
    return StatusFromErrno(write_errno != 0 ? write_errno : errno,
                           "write failed: " + path);
  }
  return Status::Ok();
}

Result<std::string> ReadBinaryFile(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) {
    return StatusFromErrno("cannot open for reading: " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  errno = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
    data.append(buf, n);
  }
  bool read_error = std::ferror(fp) != 0;
  int read_errno = errno;
  std::fclose(fp);
  if (read_error) {
    return StatusFromErrno(read_errno, "read error: " + path);
  }
  return data;
}

}  // namespace bbsmine
