// MD5 message digest (RFC 1321), implemented from scratch.
//
// The paper derives its Bloom-filter hash family from the 128-bit MD5
// signature of the item name: "we take the four disjoint groups of bits from
// the 128-bit MD5 signature of the item name; if more bits are needed, we
// calculate the MD5 signature of the item name concatenated with itself"
// (Section 4). This module provides the digest; core/bloom_hash.h builds the
// hash family on top of it.
//
// MD5 is used here purely as a mixing function for index hashing, exactly as
// in the paper — not for any security purpose.

#ifndef BBSMINE_UTIL_MD5_H_
#define BBSMINE_UTIL_MD5_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace bbsmine {

/// A 16-byte MD5 digest.
using Md5Digest = std::array<uint8_t, 16>;

/// Incremental MD5 hasher.
///
/// Usage:
///   Md5 md5;
///   md5.Update(data, len);
///   Md5Digest d = md5.Finish();
/// Finish() may be called once; the object must not be reused afterwards.
class Md5 {
 public:
  Md5();

  /// Absorbs `len` bytes at `data`.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Applies padding and returns the digest.
  Md5Digest Finish();

  /// One-shot digest of a byte string.
  static Md5Digest Hash(std::string_view s);

  /// Renders a digest as 32 lowercase hex characters.
  static std::string ToHex(const Md5Digest& digest);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[4];
  uint64_t total_len_ = 0;   // bytes absorbed so far
  uint8_t buffer_[64];       // partial block
  size_t buffer_len_ = 0;
  bool finished_ = false;
};

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_MD5_H_
