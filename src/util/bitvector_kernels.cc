// Kernel registry, runtime CPU dispatch, and the portable scalar kernels.
//
// The vector kernels live in sibling TUs (bitvector_kernels_{avx2,avx512,
// neon}.cc) compiled with the matching arch flags; this TU is compiled with
// the project's baseline flags only, so it is always safe to execute.

#include "util/bitvector_kernels.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bbsmine {
namespace kernels {

namespace {

// ---- Portable scalar kernels -------------------------------------------

uint64_t ScalarCount(const Word* w, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(std::popcount(w[i]));
  }
  return total;
}

void ScalarAndWords(Word* dst, const Word* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

uint64_t ScalarAndCount(Word* dst, const Word* src, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    dst[i] &= src[i];
    total += static_cast<uint64_t>(std::popcount(dst[i]));
  }
  return total;
}

uint64_t ScalarAssignAndCount(Word* dst, const Word* a, const Word* b,
                              size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    dst[i] = a[i] & b[i];
    total += static_cast<uint64_t>(std::popcount(dst[i]));
  }
  return total;
}

void ScalarOrWords(Word* dst, const Word* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void ScalarAndNotWords(Word* dst, const Word* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

bool ScalarIntersects(const Word* a, const Word* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool ScalarIsSubsetOf(const Word* a, const Word* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

// Words per block of the multi-operand AND: 512 words = 4 KiB per operand,
// so a handful of operand streams stay L1/L2-resident while the block's
// running AND is reduced to a count.
constexpr size_t kAndManyBlockWords = 512;

uint64_t ScalarAndManyCount(Word* dst, const Word* const* srcs, size_t k,
                            size_t n) {
  if (k == 1) {
    std::memcpy(dst, srcs[0], n * sizeof(Word));
    return ScalarCount(dst, n);
  }
  uint64_t total = 0;
  for (size_t base = 0; base < n; base += kAndManyBlockWords) {
    size_t len = std::min(kAndManyBlockWords, n - base);
    uint64_t block = ScalarAssignAndCount(dst + base, srcs[0] + base,
                                          srcs[1] + base, len);
    // A block whose running AND goes all-zero skips its remaining
    // operands: further ANDs cannot resurrect bits, and dst is already
    // the correct (zero) k-way AND there.
    for (size_t op = 2; op < k && block != 0; ++op) {
      block = ScalarAndCount(dst + base, srcs[op] + base, len);
    }
    total += block;
  }
  return total;
}

const KernelOps kScalarOps = {
    .name = "scalar",
    .count = ScalarCount,
    .and_words = ScalarAndWords,
    .and_count = ScalarAndCount,
    .assign_and_count = ScalarAssignAndCount,
    .or_words = ScalarOrWords,
    .andnot_words = ScalarAndNotWords,
    .intersects = ScalarIntersects,
    .is_subset_of = ScalarIsSubsetOf,
    .and_many_count = ScalarAndManyCount,
};

// ---- Registry & dispatch ------------------------------------------------

/// Kernels compiled into this binary, best first. A null entry means the
/// TU was not built for this target.
const KernelOps* CompiledKernels(size_t idx) {
  switch (idx) {
#if defined(BBSMINE_HAVE_KERNEL_AVX512)
    case 0:
      return internal::Avx512Kernels();
#endif
#if defined(BBSMINE_HAVE_KERNEL_AVX2)
    case 1:
      return internal::Avx2Kernels();
#endif
#if defined(BBSMINE_HAVE_KERNEL_NEON)
    case 2:
      return internal::NeonKernels();
#endif
    case 3:
      return &kScalarOps;
    default:
      return nullptr;
  }
}

constexpr size_t kNumKernelSlots = 4;

/// True when the running CPU can execute the kernel in slot `idx`. The
/// per-ISA TUs are compiled with -m flags, so they must never run without
/// this check passing.
bool CpuSupports(size_t idx) {
  switch (idx) {
    case 0:  // avx512: foundation + BW/VL for 512-bit integer ops + VPOPCNTDQ
#if defined(__x86_64__) || defined(__i386__)
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512vpopcntdq");
#else
      return false;
#endif
    case 1:  // avx2
#if defined(__x86_64__) || defined(__i386__)
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case 2:  // neon: baseline on aarch64
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
    case 3:  // scalar
      return true;
    default:
      return false;
  }
}

const KernelOps* FindByName(const char* name) {
  for (size_t i = 0; i < kNumKernelSlots; ++i) {
    const KernelOps* ops = CompiledKernels(i);
    if (ops != nullptr && CpuSupports(i) && std::strcmp(ops->name, name) == 0) {
      return ops;
    }
  }
  return nullptr;
}

const KernelOps* PickDefault() {
  const char* env = std::getenv("BBSMINE_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    const KernelOps* forced = FindByName(env);
    if (forced != nullptr) return forced;
    std::fprintf(stderr,
                 "bbsmine: BBSMINE_KERNEL=%s is unknown or unsupported on "
                 "this CPU; using best available kernel\n",
                 env);
  }
  for (size_t i = 0; i < kNumKernelSlots; ++i) {
    const KernelOps* ops = CompiledKernels(i);
    if (ops != nullptr && CpuSupports(i)) return ops;
  }
  return &kScalarOps;  // unreachable: the scalar slot always qualifies
}

/// The active kernel. Lazily initialized (thread-safe via the magic-static
/// in ActiveSlot); only SetActive mutates it afterwards.
const KernelOps*& ActiveSlot() {
  static const KernelOps* active = PickDefault();
  return active;
}

}  // namespace

namespace internal {
const KernelOps* ScalarKernels() { return &kScalarOps; }
}  // namespace internal

const KernelOps& Active() { return *ActiveSlot(); }

const char* ActiveName() { return Active().name; }

std::vector<const char*> AvailableNames() {
  std::vector<const char*> names;
  for (size_t i = 0; i < kNumKernelSlots; ++i) {
    const KernelOps* ops = CompiledKernels(i);
    if (ops != nullptr && CpuSupports(i)) names.push_back(ops->name);
  }
  return names;
}

bool SetActive(const char* name) {
  const KernelOps* ops = FindByName(name);
  if (ops == nullptr) return false;
  ActiveSlot() = ops;
  return true;
}

}  // namespace kernels
}  // namespace bbsmine
