// Lightweight error-handling primitives used across the bbsmine library.
//
// The library does not throw exceptions on expected failure paths (I/O errors,
// malformed files, invalid configuration). Fallible operations return a
// Status, and fallible constructors are replaced by static factory functions
// returning Result<T>.

#ifndef BBSMINE_UTIL_STATUS_H_
#define BBSMINE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace bbsmine {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kIndeterminate,
};

/// Returns a human-readable name for a status code, e.g. "IoError".
const char* StatusCodeName(StatusCode code);

/// The outcome of a fallible operation: either OK or a code plus message.
///
/// Status is cheap to copy in the OK case (no allocation) and is annotated
/// [[nodiscard]] so silently dropped errors fail the build.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Transient overload: the caller should back off and retry (admission
  /// queue full, service draining). Distinct from the permanent failures
  /// above so clients can tell backpressure from errors.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Unknown outcome: the operation may or may not have taken effect (a
  /// response timeout after a non-idempotent request was fully sent).
  /// Blindly retrying can double-apply; the caller must reconcile first.
  static Status Indeterminate(std::string msg) {
    return Status(StatusCode::kIndeterminate, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Minimal StatusOr analogue.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Builds a Status from a C errno value: "<context>: <strerror text>
/// (errno N)". The code is kIoError for every errno (callers that need a
/// finer category can wrap the result); what matters is that socket and
/// file errors report the same errno text everywhere.
Status StatusFromErrno(int errno_value, const std::string& context);

/// StatusFromErrno over the calling thread's current errno.
Status StatusFromErrno(const std::string& context);

}  // namespace bbsmine

/// Propagates a non-OK status from an expression to the caller.
#define BBSMINE_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::bbsmine::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // BBSMINE_UTIL_STATUS_H_
