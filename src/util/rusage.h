// Process page-fault counters, for observing real memory behavior.
//
// The mmap slice backend trades heap residency for demand paging; heap
// accounting alone cannot see that. getrusage exposes the ground truth:
// minor faults (page present in the page cache, only a PTE is installed)
// and major faults (the page had to be read from disk). Reports and
// benchmarks record deltas of these around a measured region.

#ifndef BBSMINE_UTIL_RUSAGE_H_
#define BBSMINE_UTIL_RUSAGE_H_

#include <cstdint>

namespace bbsmine {

/// Cumulative page-fault counts of the calling process.
struct PageFaultCounters {
  uint64_t minor = 0;  ///< Faults served without disk I/O.
  uint64_t major = 0;  ///< Faults that required reading from disk.

  PageFaultCounters operator-(const PageFaultCounters& other) const {
    return {minor - other.minor, major - other.major};
  }
};

/// Snapshot of the process's page-fault counters (getrusage RUSAGE_SELF).
PageFaultCounters CurrentPageFaults();

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_RUSAGE_H_
