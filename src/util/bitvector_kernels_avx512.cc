// AVX-512 kernels: 512-bit lanes with the VPOPCNTDQ per-lane popcount
// (vpopcntq) accumulated in-register, masked loads/stores for tails.
// Requires AVX512F + BW + VL + VPOPCNTDQ, verified by the dispatcher.
//
// This TU is compiled with the matching -mavx512* flags (see
// src/util/CMakeLists.txt) and must not execute on unsupported CPUs.

#include "util/bitvector_kernels.h"

#if defined(BBSMINE_HAVE_KERNEL_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace bbsmine {
namespace kernels {
namespace {

constexpr size_t kWordsPerVec = 8;  // 512 bits

inline __m512i Load(const Word* p) { return _mm512_loadu_si512(p); }
inline void Store(Word* p, __m512i v) { _mm512_storeu_si512(p, v); }

inline __mmask8 TailMask(size_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1);
}

/// Horizontal u64 sum. A store-and-add compiles warning-free (GCC's
/// _mm512_reduce_add_epi64 trips -Wuninitialized inside its own header)
/// and runs once per call, outside the hot loops.
inline uint64_t HorizontalSum(__m512i v) {
  alignas(64) uint64_t lanes[8];
  _mm512_store_si512(lanes, v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7];
}

uint64_t Avx512Count(const Word* w, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(Load(w + i)));
  }
  if (i < n) {
    __m512i v = _mm512_maskz_loadu_epi64(TailMask(n - i), w + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return HorizontalSum(acc);
}

void Avx512AndWords(Word* dst, const Word* src, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    Store(dst + i, _mm512_and_si512(Load(dst + i), Load(src + i)));
  }
  if (i < n) {
    __mmask8 m = TailMask(n - i);
    __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(m, dst + i),
                                 _mm512_maskz_loadu_epi64(m, src + i));
    _mm512_mask_storeu_epi64(dst + i, m, v);
  }
}

uint64_t Avx512AndCount(Word* dst, const Word* src, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    __m512i v = _mm512_and_si512(Load(dst + i), Load(src + i));
    Store(dst + i, v);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  if (i < n) {
    __mmask8 m = TailMask(n - i);
    __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(m, dst + i),
                                 _mm512_maskz_loadu_epi64(m, src + i));
    _mm512_mask_storeu_epi64(dst + i, m, v);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return HorizontalSum(acc);
}

uint64_t Avx512AssignAndCount(Word* dst, const Word* a, const Word* b,
                              size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    __m512i v = _mm512_and_si512(Load(a + i), Load(b + i));
    Store(dst + i, v);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  if (i < n) {
    __mmask8 m = TailMask(n - i);
    __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                 _mm512_maskz_loadu_epi64(m, b + i));
    _mm512_mask_storeu_epi64(dst + i, m, v);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return HorizontalSum(acc);
}

void Avx512OrWords(Word* dst, const Word* src, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    Store(dst + i, _mm512_or_si512(Load(dst + i), Load(src + i)));
  }
  if (i < n) {
    __mmask8 m = TailMask(n - i);
    __m512i v = _mm512_or_si512(_mm512_maskz_loadu_epi64(m, dst + i),
                                _mm512_maskz_loadu_epi64(m, src + i));
    _mm512_mask_storeu_epi64(dst + i, m, v);
  }
}

void Avx512AndNotWords(Word* dst, const Word* src, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    // vpandnq computes ~first & second.
    Store(dst + i, _mm512_andnot_si512(Load(src + i), Load(dst + i)));
  }
  if (i < n) {
    __mmask8 m = TailMask(n - i);
    __m512i v = _mm512_andnot_si512(_mm512_maskz_loadu_epi64(m, src + i),
                                    _mm512_maskz_loadu_epi64(m, dst + i));
    _mm512_mask_storeu_epi64(dst + i, m, v);
  }
}

bool Avx512Intersects(const Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    if (_mm512_test_epi64_mask(Load(a + i), Load(b + i)) != 0) return true;
  }
  if (i < n) {
    __mmask8 m = TailMask(n - i);
    if (_mm512_test_epi64_mask(_mm512_maskz_loadu_epi64(m, a + i),
                               _mm512_maskz_loadu_epi64(m, b + i)) != 0) {
      return true;
    }
  }
  return false;
}

bool Avx512IsSubsetOf(const Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + kWordsPerVec <= n; i += kWordsPerVec) {
    // (a & ~b) != 0 on any lane means a ⊄ b; vpandnq computes ~first & second.
    __m512i diff = _mm512_andnot_si512(Load(b + i), Load(a + i));
    if (_mm512_test_epi64_mask(diff, diff) != 0) return false;
  }
  if (i < n) {
    __mmask8 m = TailMask(n - i);
    __m512i diff = _mm512_andnot_si512(_mm512_maskz_loadu_epi64(m, b + i),
                                       _mm512_maskz_loadu_epi64(m, a + i));
    if (_mm512_test_epi64_mask(diff, diff) != 0) return false;
  }
  return true;
}

constexpr size_t kAndManyBlockWords = 512;  // 4 KiB per operand stream

uint64_t Avx512AndManyCount(Word* dst, const Word* const* srcs, size_t k,
                            size_t n) {
  if (k == 1) {
    std::memcpy(dst, srcs[0], n * sizeof(Word));
    return Avx512Count(dst, n);
  }
  uint64_t total = 0;
  for (size_t base = 0; base < n; base += kAndManyBlockWords) {
    size_t len = std::min(kAndManyBlockWords, n - base);
    uint64_t block = Avx512AssignAndCount(dst + base, srcs[0] + base,
                                          srcs[1] + base, len);
    for (size_t op = 2; op < k && block != 0; ++op) {
      block = Avx512AndCount(dst + base, srcs[op] + base, len);
    }
    total += block;
  }
  return total;
}

const KernelOps kAvx512Ops = {
    .name = "avx512",
    .count = Avx512Count,
    .and_words = Avx512AndWords,
    .and_count = Avx512AndCount,
    .assign_and_count = Avx512AssignAndCount,
    .or_words = Avx512OrWords,
    .andnot_words = Avx512AndNotWords,
    .intersects = Avx512Intersects,
    .is_subset_of = Avx512IsSubsetOf,
    .and_many_count = Avx512AndManyCount,
};

}  // namespace

namespace internal {
const KernelOps* Avx512Kernels() { return &kAvx512Ops; }
}  // namespace internal

}  // namespace kernels
}  // namespace bbsmine

#endif  // BBSMINE_HAVE_KERNEL_AVX512
