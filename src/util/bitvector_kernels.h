// Vectorized word-span kernels behind BitVector's bulk operations.
//
// Every miner bottoms out in CountItemSet = AND + popcount over N-bit
// slices (paper Figure 1). PR 1 scaled that across cores; this layer raises
// per-core throughput: one implementation of each primitive per ISA
// (portable scalar, AVX2 with a Harley-Seal carry-save popcount fused into
// the AND pass, AVX-512 with VPOPCNTDQ, NEON), selected once at startup by
// runtime CPU detection and overridable with BBSMINE_KERNEL for testing.
//
// All kernels operate on spans of 64-bit words. Callers (BitVector, the
// BBS index's blocked CountWithSeed) own the bit-level invariants: bits
// past size() in the last word are zero, so no kernel masks tails.
//
// Thread safety: the active kernel is chosen once (first use) and is
// immutable afterwards from the library's point of view; SetActiveKernel
// exists for tests/benchmarks and must not race concurrent kernel calls.

#ifndef BBSMINE_UTIL_BITVECTOR_KERNELS_H_
#define BBSMINE_UTIL_BITVECTOR_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bbsmine {
namespace kernels {

using Word = uint64_t;

/// One ISA's implementation of the word-span primitives. All counts are
/// popcounts of the *result*; `n` is a word count; src spans never alias
/// dst unless stated.
struct KernelOps {
  const char* name;

  /// Popcount of w[0..n).
  uint64_t (*count)(const Word* w, size_t n);

  /// dst[i] &= src[i].
  void (*and_words)(Word* dst, const Word* src, size_t n);

  /// dst[i] &= src[i]; returns popcount of the updated dst (fused AND +
  /// Harley-Seal count in the vector kernels — one pass, not two).
  uint64_t (*and_count)(Word* dst, const Word* src, size_t n);

  /// dst[i] = a[i] & b[i]; returns popcount of dst. Kills the
  /// copy-then-AND two-pass pattern. dst may alias a or b.
  uint64_t (*assign_and_count)(Word* dst, const Word* a, const Word* b,
                               size_t n);

  /// dst[i] |= src[i].
  void (*or_words)(Word* dst, const Word* src, size_t n);

  /// dst[i] &= ~src[i].
  void (*andnot_words)(Word* dst, const Word* src, size_t n);

  /// True iff (a & b) has any set bit. Early-exits.
  bool (*intersects)(const Word* a, const Word* b, size_t n);

  /// True iff (a & ~b) has no set bit. Early-exits.
  bool (*is_subset_of)(const Word* a, const Word* b, size_t n);

  /// dst[i] = srcs[0][i] & srcs[1][i] & ... & srcs[k-1][i]; returns the
  /// popcount of dst. One cache-blocked pass over all k operands instead
  /// of k full-span sweeps; a block whose running AND goes all-zero skips
  /// the remaining operands for that block. k >= 1; dst must not alias any
  /// src.
  uint64_t (*and_many_count)(Word* dst, const Word* const* srcs, size_t k,
                             size_t n);
};

/// The kernel all BitVector bulk ops dispatch through. Selected on first
/// use: BBSMINE_KERNEL=<name> if set and available, else the best ISA the
/// CPU supports (avx512 > avx2 > neon > scalar).
const KernelOps& Active();

/// Name of the active kernel ("scalar", "avx2", "avx512", "neon").
const char* ActiveName();

/// Names of every kernel compiled in *and* runnable on this CPU, best
/// first. Always contains "scalar".
std::vector<const char*> AvailableNames();

/// Forces the active kernel by name. Returns false (and leaves the active
/// kernel unchanged) if the name is unknown or the CPU can't run it. Test
/// and benchmark hook; not safe against concurrent kernel calls.
bool SetActive(const char* name);

// --- Convenience wrappers over Active() ---------------------------------

inline uint64_t Count(const Word* w, size_t n) { return Active().count(w, n); }
inline void AndWords(Word* dst, const Word* src, size_t n) {
  Active().and_words(dst, src, n);
}
inline uint64_t AndCount(Word* dst, const Word* src, size_t n) {
  return Active().and_count(dst, src, n);
}
inline uint64_t AssignAndCount(Word* dst, const Word* a, const Word* b,
                               size_t n) {
  return Active().assign_and_count(dst, a, b, n);
}
inline void OrWords(Word* dst, const Word* src, size_t n) {
  Active().or_words(dst, src, n);
}
inline void AndNotWords(Word* dst, const Word* src, size_t n) {
  Active().andnot_words(dst, src, n);
}
inline bool Intersects(const Word* a, const Word* b, size_t n) {
  return Active().intersects(a, b, n);
}
inline bool IsSubsetOf(const Word* a, const Word* b, size_t n) {
  return Active().is_subset_of(a, b, n);
}
inline uint64_t AndManyCount(Word* dst, const Word* const* srcs, size_t k,
                             size_t n) {
  return Active().and_many_count(dst, srcs, k, n);
}

namespace internal {
// Per-ISA kernel tables, defined in their own translation units so each can
// be compiled with the matching -m<arch> flags. Only referenced when the
// corresponding BBSMINE_HAVE_KERNEL_* macro is defined by the build.
const KernelOps* ScalarKernels();
const KernelOps* Avx2Kernels();
const KernelOps* Avx512Kernels();
const KernelOps* NeonKernels();
}  // namespace internal

}  // namespace kernels
}  // namespace bbsmine

#endif  // BBSMINE_UTIL_BITVECTOR_KERNELS_H_
