#include "util/socket.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace bbsmine {

namespace {

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<OwnedFd> ListenTcp(const std::string& host, uint16_t port,
                          int backlog) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return StatusFromErrno("socket");
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return StatusFromErrno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return StatusFromErrno("listen " + host + ":" + std::to_string(port));
  }
  return fd;
}

Result<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return StatusFromErrno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port,
                           int timeout_ms) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return StatusFromErrno("socket");
  const std::string target = host + ":" + std::to_string(port);

  // Non-blocking connect + poll: a blocking ::connect against a blackholed
  // host waits for the kernel default (minutes), far past any caller
  // deadline. EINPROGRESS hands the handshake to poll, which honors
  // `timeout_ms`; SO_ERROR then reports how the handshake actually ended.
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return StatusFromErrno("fcntl O_NONBLOCK");
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      return StatusFromErrno("connect " + target);
    }
    pollfd pfd{fd.get(), POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) return StatusFromErrno("poll");
    if (ready == 0) {
      return Status::Unavailable("connect " + target + " timed out after " +
                                 std::to_string(timeout_ms) + " ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return StatusFromErrno("getsockopt SO_ERROR");
    }
    if (err != 0) {
      errno = err;
      return StatusFromErrno("connect " + target);
    }
  }
  if (::fcntl(fd.get(), F_SETFL, flags) != 0) {
    return StatusFromErrno("fcntl restore flags");
  }
  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<OwnedFd> AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  int ready;
  do {
    ready = ::poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) return StatusFromErrno("poll");
  if (ready == 0) return OwnedFd();  // timeout: let the caller re-check
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return StatusFromErrno("accept");
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return OwnedFd(fd);
}

Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return StatusFromErrno("send");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::Ok();
}

Status RecvExact(int fd, size_t n, std::string* out, int timeout_ms) {
  out->clear();
  out->reserve(n);
  char buf[1 << 14];
  while (out->size() < n) {
    pollfd pfd{fd, POLLIN, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) return StatusFromErrno("poll");
    if (ready == 0) return Status::Unavailable("recv timed out");
    size_t want = std::min(n - out->size(), sizeof(buf));
    ssize_t got = ::recv(fd, buf, want, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return StatusFromErrno("recv");
    }
    if (got == 0) {
      return out->empty() ? Status::NotFound("peer closed")
                          : Status::IoError("peer closed mid-message");
    }
    out->append(buf, static_cast<size_t>(got));
  }
  return Status::Ok();
}

}  // namespace bbsmine
