// A minimal fixed-size thread pool and a ParallelFor helper.
//
// The mining engine parallelizes embarrassingly parallel fan-outs: per-segment
// counting in SegmentedBbs, the root-level subtrees of the filter walks, and
// the candidate loops of postprocessing/refinement. All of those reduce to
// "run body(i) for i in [0, n) on up to T threads", which is what ParallelFor
// provides. Work is distributed dynamically (atomic index), so uneven subtree
// sizes balance automatically.
//
// No external dependencies: std::thread + a mutex/condvar work queue. Tasks
// must not throw (the library reports errors via Status, not exceptions).

#ifndef BBSMINE_UTIL_THREAD_POOL_H_
#define BBSMINE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bbsmine {

/// A fixed set of worker threads draining a shared task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks may be submitted from any thread, including
  /// from inside another task.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Deepest backlog the task queue has reached (watermark over the pool's
  /// lifetime): tasks waiting for a worker at the moment of a Submit. A
  /// value near num_threads() means the fan-out saturated the pool.
  uint64_t max_queue_depth() const {
    std::unique_lock<std::mutex> lock(mu_);
    return max_queue_depth_;
  }

  /// Runs body(i) for every i in [0, n), distributing indices dynamically
  /// across the pool's workers. Returns when all iterations are done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// The number of hardware threads, or 1 when it cannot be determined.
  /// Used to resolve "num_threads = 0 means auto".
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signaled when tasks arrive / shutdown
  std::condition_variable idle_cv_;  // signaled when the pool drains
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  uint64_t max_queue_depth_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(i) for every i in [0, n) on up to `num_threads` threads.
/// With num_threads <= 1 (or n <= 1) the loop runs inline on the calling
/// thread — zero threading overhead, and the serial path stays the serial
/// path. `num_threads == 0` means one thread per hardware thread.
///
/// When `max_queue_depth` is non-null it is raised (never lowered) to the
/// deepest task backlog the fan-out reached; the inline path leaves it
/// untouched (nothing ever queues).
void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& body,
                 uint64_t* max_queue_depth = nullptr);

/// Resolves a user-facing thread-count knob: 0 = auto (hardware threads),
/// otherwise the value itself, clamped to at least 1.
size_t ResolveThreads(size_t num_threads);

}  // namespace bbsmine

#endif  // BBSMINE_UTIL_THREAD_POOL_H_
