#include "cluster/shard_map.h"

#include <fstream>
#include <sstream>

namespace bbsmine::cluster {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Result<ShardEndpoint> ParseEndpoint(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::InvalidArgument("shard endpoint must be host:port, got \"" +
                                   spec + "\"");
  }
  ShardEndpoint endpoint;
  endpoint.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  uint64_t port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("shard port must be numeric, got \"" +
                                     port_text + "\"");
    }
    port = port * 10 + static_cast<uint64_t>(c - '0');
    if (port > 65535) break;
  }
  if (port == 0 || port > 65535) {
    return Status::InvalidArgument("shard port out of range: \"" + port_text +
                                   "\"");
  }
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

Result<ShardEntry> ParseShardEntry(const std::string& spec) {
  ShardEntry entry;
  size_t slash = spec.find('/');
  if (slash == std::string::npos) {
    Result<ShardEndpoint> primary = ParseEndpoint(spec);
    if (!primary.ok()) return primary.status();
    entry.primary = std::move(*primary);
    return entry;
  }
  Result<ShardEndpoint> primary = ParseEndpoint(Trim(spec.substr(0, slash)));
  if (!primary.ok()) return primary.status();
  Result<ShardEndpoint> replica = ParseEndpoint(Trim(spec.substr(slash + 1)));
  if (!replica.ok()) return replica.status();
  entry.primary = std::move(*primary);
  entry.has_replica = true;
  entry.replica = std::move(*replica);
  return entry;
}

Result<ShardMap> ParseShardSpec(const std::string& spec) {
  ShardMap map;
  std::stringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    entry = Trim(entry);
    if (entry.empty()) continue;
    Result<ShardEntry> parsed = ParseShardEntry(entry);
    if (!parsed.ok()) return parsed.status();
    map.shards.push_back(std::move(*parsed));
  }
  if (map.empty()) {
    return Status::InvalidArgument("shard spec names no endpoints: \"" + spec +
                                   "\"");
  }
  return map;
}

Result<ShardMap> LoadShardMapFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open shard map file: " + path);
  }
  ShardMap map;
  std::string line;
  while (std::getline(file, line)) {
    size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = Trim(line);
    if (line.empty()) continue;
    Result<ShardEntry> parsed = ParseShardEntry(line);
    if (!parsed.ok()) return parsed.status();
    map.shards.push_back(std::move(*parsed));
  }
  if (map.empty()) {
    return Status::InvalidArgument("shard map file names no endpoints: " +
                                   path);
  }
  return map;
}

}  // namespace bbsmine::cluster
