#include "cluster/merge.h"

#include <algorithm>
#include <set>

namespace bbsmine::cluster {

std::vector<Itemset> UnionCandidates(
    const std::vector<ShardMineResult>& round1) {
  std::set<Itemset> unioned;
  for (const ShardMineResult& shard : round1) {
    if (!shard.reachable) continue;
    for (const auto& [items, support] : shard.supports) {
      unioned.insert(items);
    }
  }
  return std::vector<Itemset>(unioned.begin(), unioned.end());
}

std::vector<Itemset> MissingCandidates(const ShardMineResult& shard,
                                       const std::vector<Itemset>& candidates) {
  std::vector<Itemset> missing;
  for (const Itemset& candidate : candidates) {
    if (shard.supports.find(candidate) == shard.supports.end()) {
      missing.push_back(candidate);
    }
  }
  return missing;
}

std::vector<Pattern> MergeGlobalPatterns(
    const std::vector<ShardMineResult>& round1,
    const std::vector<std::map<Itemset, uint64_t>>& round2,
    const std::vector<Itemset>& candidates, uint64_t tau) {
  std::vector<Pattern> patterns;
  for (const Itemset& candidate : candidates) {
    uint64_t support = 0;
    for (size_t i = 0; i < round1.size(); ++i) {
      if (!round1[i].reachable) continue;
      auto local = round1[i].supports.find(candidate);
      if (local != round1[i].supports.end()) {
        support += local->second;
      } else if (i < round2.size()) {
        auto exact = round2[i].find(candidate);
        if (exact != round2[i].end()) support += exact->second;
      }
    }
    if (support >= tau) {
      Pattern pattern;
      pattern.items = candidate;
      pattern.support = support;
      patterns.push_back(std::move(pattern));
    }
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.items < b.items;
            });
  return patterns;
}

}  // namespace bbsmine::cluster
