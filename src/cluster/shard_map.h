// The cluster topology: an ordered list of shard endpoints.
//
// Shards partition the global database by transaction range: shard 0 holds
// the first contiguous block of transactions, shard 1 the next, and so on
// (`bbsmine split` cuts a database this way). Order is load-bearing twice
// over — the router's merge reduces per-shard results in shard order so
// answers are deterministic, and INSERT always routes to the last shard
// (the tail of the range partition) so the range invariant survives
// writes.
//
// Two spec formats, both producing the same ShardMap:
//   * inline:  "host:port[/host:port],..."        (--shards flag)
//   * file:    one "host:port[/host:port]" per line, '#' comments and
//              blank lines ignored                (--shard-map flag)
//
// The optional "/host:port" suffix names the shard's warm replica (a
// bbsmined started with --follow pointing at the primary). The router
// probes and promotes it when the primary dies (router.h, "Failover").

#ifndef BBSMINE_CLUSTER_SHARD_MAP_H_
#define BBSMINE_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace bbsmine::cluster {

struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// One shard: its primary endpoint plus an optional warm replica.
struct ShardEntry {
  ShardEndpoint primary;
  bool has_replica = false;
  ShardEndpoint replica;

  /// Renders the spec form: "host:port" or "host:port/host:port".
  std::string ToString() const {
    return has_replica ? primary.ToString() + "/" + replica.ToString()
                       : primary.ToString();
  }
};

struct ShardMap {
  std::vector<ShardEntry> shards;

  size_t size() const { return shards.size(); }
  bool empty() const { return shards.empty(); }
};

/// Parses one "host:port" endpoint.
Result<ShardEndpoint> ParseEndpoint(const std::string& spec);

/// Parses one "host:port[/host:port]" shard entry.
Result<ShardEntry> ParseShardEntry(const std::string& spec);

/// Parses the inline comma-separated form.
Result<ShardMap> ParseShardSpec(const std::string& spec);

/// Loads the file form (one endpoint per line; '#' comments).
Result<ShardMap> LoadShardMapFile(const std::string& path);

}  // namespace bbsmine::cluster

#endif  // BBSMINE_CLUSTER_SHARD_MAP_H_
