#include "cluster/bloofi_tree.h"

#include <algorithm>
#include <utility>

namespace bbsmine::cluster {

namespace {

void OrInto(const BitVector& src, BitVector* dst) {
  const BitVector::Word* from = src.words().data();
  BitVector::Word* to = dst->MutableWords();
  const size_t words = std::min(src.num_words(), dst->num_words());
  for (size_t w = 0; w < words; ++w) to[w] |= from[w];
}

bool Covers(const BitVector& signature,
            const std::vector<uint32_t>& positions) {
  for (uint32_t pos : positions) {
    if (pos >= signature.size() || !signature.Get(pos)) return false;
  }
  return true;
}

}  // namespace

BloofiTree BloofiTree::Build(std::vector<BitVector> leaves, size_t branching) {
  BloofiTree tree;
  tree.branching_ = std::max<size_t>(2, branching);
  if (leaves.empty()) return tree;

  // Level 0: one node per shard, in shard order.
  std::vector<size_t> level;
  level.reserve(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    Node node;
    node.signature = std::move(leaves[i]);
    node.leaf = i;
    node.leaf_count = 1;
    tree.leaf_nodes_.push_back(tree.nodes_.size());
    level.push_back(tree.nodes_.size());
    tree.nodes_.push_back(std::move(node));
  }

  // Fold levels bottom-up until one root remains. Grouping consecutive
  // children keeps neighboring shards (adjacent transaction ranges) under
  // shared subtrees.
  while (level.size() > 1) {
    std::vector<size_t> next;
    for (size_t begin = 0; begin < level.size(); begin += tree.branching_) {
      const size_t end = std::min(begin + tree.branching_, level.size());
      Node parent;
      parent.signature = BitVector(tree.nodes_[level[begin]].signature.size());
      for (size_t c = begin; c < end; ++c) {
        parent.children.push_back(level[c]);
        parent.leaf_count += tree.nodes_[level[c]].leaf_count;
        OrInto(tree.nodes_[level[c]].signature, &parent.signature);
      }
      const size_t parent_idx = tree.nodes_.size();
      for (size_t child : parent.children) {
        tree.nodes_[child].parent = parent_idx;
      }
      next.push_back(parent_idx);
      tree.nodes_.push_back(std::move(parent));
    }
    level = std::move(next);
  }
  tree.root_ = level.front();
  return tree;
}

std::vector<size_t> BloofiTree::Query(const std::vector<uint32_t>& positions,
                                      QueryStats* stats) const {
  std::vector<size_t> matched;
  if (root_ == kNoNode) return matched;
  std::vector<size_t> stack{root_};
  while (!stack.empty()) {
    const size_t idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[idx];
    if (stats != nullptr) ++stats->nodes_visited;
    if (!Covers(node.signature, positions)) {
      if (stats != nullptr) {
        ++stats->subtrees_pruned;
        stats->leaves_pruned += node.leaf_count;
      }
      continue;
    }
    if (node.leaf != kNoNode) {
      matched.push_back(node.leaf);
      continue;
    }
    // Push in reverse so children pop in order; matched stays sorted by
    // shard index without a final sort.
    for (size_t c = node.children.size(); c-- > 0;) {
      stack.push_back(node.children[c]);
    }
  }
  return matched;
}

void BloofiTree::OrIntoLeaf(size_t leaf,
                            const std::vector<uint32_t>& positions) {
  for (size_t idx = leaf_nodes_[leaf]; idx != kNoNode;
       idx = nodes_[idx].parent) {
    BitVector& signature = nodes_[idx].signature;
    for (uint32_t pos : positions) {
      if (pos < signature.size()) signature.Set(pos);
    }
  }
}

void BloofiTree::OrSignatureIntoLeaf(size_t leaf, const BitVector& signature) {
  for (size_t idx = leaf_nodes_[leaf]; idx != kNoNode;
       idx = nodes_[idx].parent) {
    OrInto(signature, &nodes_[idx].signature);
  }
}

void BloofiTree::SetLeaf(size_t leaf, const BitVector& signature) {
  nodes_[leaf_nodes_[leaf]].signature = signature;
  // A replace may clear bits, so every ancestor is recomputed from its
  // children rather than ORed in place.
  for (size_t idx = nodes_[leaf_nodes_[leaf]].parent; idx != kNoNode;
       idx = nodes_[idx].parent) {
    Node& node = nodes_[idx];
    node.signature = BitVector(node.signature.size());
    for (size_t child : node.children) {
      OrInto(nodes_[child].signature, &node.signature);
    }
  }
}

}  // namespace bbsmine::cluster
