// The router's shard-pruning structure: a Bloofi-style hierarchical OR
// tree over shard signatures (Crainiceanu & Lemire, "Bloofi: multi-
// dimensional Bloom filters", PAPERS.md).
//
// Each leaf holds one shard's routing signature — bit p set iff slice p is
// non-empty anywhere in that shard's segmented BBS index (the OR-fold the
// SHARDINFO verb reports). Each interior node holds the OR of its
// children. A query whose signature positions are not all covered by a
// node's bits cannot match *any* transaction in that subtree, because a
// transaction containing the query items would have set every one of those
// slice bits — so the whole subtree is skipped without touching a socket.
//
// Pruning is answer-preserving by the same argument that makes Bloom
// signatures safe: a skipped shard's AND-of-slices for the query is the
// all-zero vector, so its COUNT contribution is exactly 0 and summing over
// the surviving shards equals summing over all of them. False positives
// (a covered shard with no matches) only cost a fan-out leg, never
// correctness.
//
// Mutability: signatures only ever gain bits under INSERT, so the router
// ORs the inserted items' positions into the target leaf and its ancestor
// path (OrIntoLeaf) — no recompute. SetLeaf (full replace, e.g. after a
// shard restarts) recomputes the ancestor path, since a replace may clear
// bits — which is exactly why it must never be fed a signature captured
// before a concurrent addition; when that cannot be ruled out,
// OrSignatureIntoLeaf applies the capture additively instead.

#ifndef BBSMINE_CLUSTER_BLOOFI_TREE_H_
#define BBSMINE_CLUSTER_BLOOFI_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitvector.h"

namespace bbsmine::cluster {

class BloofiTree {
 public:
  struct QueryStats {
    size_t nodes_visited = 0;
    size_t subtrees_pruned = 0;  ///< interior/leaf nodes cut by coverage
    size_t leaves_pruned = 0;    ///< shards those cuts removed
  };

  BloofiTree() = default;

  /// Builds the tree bottom-up over `leaves` (leaf i = shard i's
  /// signature; all must share one width). `branching` >= 2 children per
  /// interior node.
  static BloofiTree Build(std::vector<BitVector> leaves, size_t branching = 4);

  size_t num_leaves() const { return leaf_nodes_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  size_t branching() const { return branching_; }

  /// Shards whose subtree covers every position in `positions` (ascending
  /// shard order). Empty `positions` matches every shard — an empty query
  /// constrains nothing.
  std::vector<size_t> Query(const std::vector<uint32_t>& positions,
                            QueryStats* stats = nullptr) const;

  /// ORs `positions` into leaf `leaf` and its ancestor path (INSERT).
  void OrIntoLeaf(size_t leaf, const std::vector<uint32_t>& positions);

  /// ORs a whole signature into leaf `leaf` and its ancestor path. The
  /// additive cousin of SetLeaf: safe when concurrent additions may have
  /// landed since `signature` was captured (a replace could clear them);
  /// any bits the capture is missing stay set, costing at most a
  /// false-positive fan-out leg, never a wrong prune.
  void OrSignatureIntoLeaf(size_t leaf, const BitVector& signature);

  /// Replaces leaf `leaf`'s signature and recomputes its ancestor path.
  void SetLeaf(size_t leaf, const BitVector& signature);

  const BitVector& leaf_signature(size_t leaf) const {
    return nodes_[leaf_nodes_[leaf]].signature;
  }

  /// The root OR of every shard signature (the fleet's own SHARDINFO
  /// answer, letting routers stack). Valid when num_leaves() > 0.
  const BitVector& root_signature() const { return nodes_[root_].signature; }

 private:
  struct Node {
    BitVector signature;
    std::vector<size_t> children;  ///< empty for leaves
    size_t parent = kNoNode;
    size_t leaf = kNoNode;         ///< shard index when this is a leaf
    size_t leaf_count = 0;         ///< shards under this subtree
  };

  static constexpr size_t kNoNode = static_cast<size_t>(-1);

  std::vector<Node> nodes_;
  std::vector<size_t> leaf_nodes_;  ///< shard index -> node index
  size_t root_ = kNoNode;
  size_t branching_ = 4;
};

}  // namespace bbsmine::cluster

#endif  // BBSMINE_CLUSTER_BLOOFI_TREE_H_
