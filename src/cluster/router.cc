#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <thread>
#include <utility>

#include "core/mining_types.h"
#include "service/wire.h"

namespace bbsmine::cluster {

namespace {

using obs::JsonValue;
using service::ErrorResponse;
using service::ItemsFromJson;
using service::ItemsToJson;
using service::OkResponse;

uint64_t MicrosSince(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

std::string VerbOf(const JsonValue& request) {
  if (request.kind() != JsonValue::Kind::kObject || !request.Has("verb") ||
      request.at("verb").kind() != JsonValue::Kind::kString) {
    return "";
  }
  return request.at("verb").AsString();
}

/// The error code of a failed response ("" for ok / malformed responses).
std::string ErrorCodeOf(const JsonValue& response) {
  if (response.kind() != JsonValue::Kind::kObject || !response.Has("error") ||
      response.at("error").kind() != JsonValue::Kind::kObject ||
      !response.at("error").Has("code")) {
    return "";
  }
  return response.at("error").at("code").AsString();
}

bool IsBackpressure(const JsonValue& response) {
  if (response.kind() != JsonValue::Kind::kObject || !response.Has("ok") ||
      response.at("ok").AsBool()) {
    return false;
  }
  return ErrorCodeOf(response) == StatusCodeName(StatusCode::kUnavailable);
}

uint64_t UintField(const JsonValue& object, const std::string& key) {
  if (object.kind() != JsonValue::Kind::kObject || !object.Has(key)) return 0;
  const JsonValue& v = object.at(key);
  return v.is_number() ? v.AsUint() : 0;
}

std::string JoinIndices(const std::vector<size_t>& indices) {
  std::string joined;
  for (size_t idx : indices) {
    if (!joined.empty()) joined += ", ";
    joined += std::to_string(idx);
  }
  return joined;
}

/// Parses a SHARDINFO "config" object into a BbsConfig (hash-identity
/// fields only).
Result<BbsConfig> ConfigFromShardInfo(const JsonValue& info) {
  if (!info.Has("config") ||
      info.at("config").kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("SHARDINFO response lacks \"config\"");
  }
  const JsonValue& c = info.at("config");
  BbsConfig config;
  config.num_bits = static_cast<uint32_t>(UintField(c, "bits"));
  config.num_hashes = static_cast<uint32_t>(UintField(c, "hashes"));
  config.hash_kind = static_cast<HashKind>(UintField(c, "hash_kind"));
  config.seed = UintField(c, "seed");
  if (config.num_bits == 0 || config.num_hashes == 0) {
    return Status::InvalidArgument("SHARDINFO config is malformed");
  }
  return config;
}

bool SameHashConfig(const BbsConfig& a, const BbsConfig& b) {
  return a.num_bits == b.num_bits && a.num_hashes == b.num_hashes &&
         a.hash_kind == b.hash_kind && a.seed == b.seed;
}

/// Renders a per-shard latency array (ServiceMetrics bucket layout: slot 0
/// = overflow) in the report's {by_depth, overflow, total, p50/95/99}
/// histogram shape.
JsonValue ShardLatencyJson(const std::vector<uint64_t>& buckets) {
  JsonValue h = JsonValue::Object();
  JsonValue by_depth = JsonValue::Array();
  size_t last = 0;
  uint64_t total = buckets[0];
  for (size_t d = 1; d < buckets.size(); ++d) {
    total += buckets[d];
    if (buckets[d] != 0) last = d;
  }
  for (size_t d = 1; d <= last; ++d) {
    by_depth.Append(JsonValue::Uint(buckets[d]));
  }
  h.Set("by_depth", std::move(by_depth));
  h.Set("overflow", JsonValue::Uint(buckets[0]));
  h.Set("total", JsonValue::Uint(total));
  h.Set("p50",
        JsonValue::Double(obs::PercentileFromLog2Buckets(buckets, 0.50)));
  h.Set("p95",
        JsonValue::Double(obs::PercentileFromLog2Buckets(buckets, 0.95)));
  h.Set("p99",
        JsonValue::Double(obs::PercentileFromLog2Buckets(buckets, 0.99)));
  return h;
}

}  // namespace

RouterService::RouterService(ShardMap map, const RouterOptions& options)
    : map_(std::move(map)),
      options_(options),
      metrics_(options.stats_windows),
      start_(std::chrono::steady_clock::now()) {
  shards_.reserve(map_.size());
  for (const ShardEntry& entry : map_.shards) {
    auto shard = std::make_unique<ShardState>();
    shard->entry = entry;
    shards_.push_back(std::move(shard));
  }
}

RouterService::~RouterService() {
  prober_stop_.store(true, std::memory_order_relaxed);
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

Status RouterService::Init() {
  if (shards_.empty()) {
    return Status::InvalidArgument("shard map is empty");
  }
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::String("SHARDINFO"));

  // Handshake every shard in parallel, with patience — in a fresh cluster
  // the shards and the router race to their listen sockets.
  std::vector<JsonValue> infos(shards_.size());
  std::vector<char> reachable(shards_.size(), 0);
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    threads.emplace_back([this, i, &infos, &reachable, &request] {
      ShardState& shard = *shards_[i];
      for (uint32_t attempt = 0; attempt <= options_.connect_retries;
           ++attempt) {
        if (attempt > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options_.connect_backoff_ms));
        }
        Result<service::ClientSession> session = service::ClientSession::Connect(
            shard.entry.primary.host, shard.entry.primary.port);
        if (!session.ok()) continue;
        Result<JsonValue> response =
            session->Call(request, options_.fanout_deadline_ms);
        if (!response.ok() || response->kind() != JsonValue::Kind::kObject ||
            !response->Has("ok") || !response->at("ok").AsBool()) {
          continue;
        }
        infos[i] = std::move(*response);
        reachable[i] = 1;
        std::lock_guard<std::mutex> lock(shard.pool_mu);
        shard.idle.push_back(std::move(*session));
        return;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Config identity: pruning and INSERT leaf updates hash queries with the
  // shards' own hash family, so every shard must agree on it.
  bool have_config = false;
  mine_enabled_ = true;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!reachable[i]) continue;
    Result<BbsConfig> config = ConfigFromShardInfo(infos[i]);
    if (!config.ok()) return config.status();
    if (!have_config) {
      config_ = *config;
      have_config = true;
    } else if (!SameHashConfig(config_, *config)) {
      return Status::InvalidArgument(
          "shard " + std::to_string(i) + " (" +
          shards_[i]->entry.primary.ToString() +
          ") has a different index config than shard 0; all shards must "
          "share bits/hashes/hash_kind/seed");
    }
    if (infos[i].Has("mine_enabled") &&
        !infos[i].at("mine_enabled").AsBool()) {
      mine_enabled_ = false;
    }
  }
  if (!have_config) {
    return Status::Unavailable(
        "no shard answered the startup handshake; is the fleet up?");
  }
  Result<BloomHashFamily> hash = BloomHashFamily::Create(
      config_.num_bits, config_.num_hashes, config_.hash_kind, config_.seed);
  if (!hash.ok()) return hash.status();
  hash_ = std::make_unique<BloomHashFamily>(std::move(*hash));

  // Leaves: real signatures for reachable shards; all-ones (never pruned,
  // so never wrongly skipped) for shards that stayed dark.
  std::vector<BitVector> leaves;
  leaves.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (reachable[i]) {
      Result<BitVector> signature = service::BitsFromHex(
          infos[i].at("signature").AsString(), config_.num_bits);
      if (!signature.ok()) return signature.status();
      leaves.push_back(std::move(*signature));
    } else {
      leaves.push_back(BitVector(config_.num_bits, true));
    }
  }
  {
    std::unique_lock<std::shared_mutex> lock(tree_mu_);
    tree_ = BloofiTree::Build(std::move(leaves), options_.branching);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!reachable[i]) continue;
    ShardState& shard = *shards_[i];
    shard.up.store(true, std::memory_order_relaxed);
    shard.transactions.store(UintField(infos[i], "transactions"),
                             std::memory_order_relaxed);
    shard.epoch.store(UintField(infos[i], "epoch"),
                      std::memory_order_relaxed);
    // The shard's fencing term starts at whatever its primary reported
    // (pre-replication daemons omit the field; 0 fences nothing).
    shard.term.store(UintField(infos[i], "term"), std::memory_order_relaxed);
  }
  if (options_.probe_interval_ms > 0) {
    prober_ = std::thread(&RouterService::ProbeLoop, this);
  }
  return Status::Ok();
}

uint64_t RouterService::failovers() const {
  return metrics_.counter(metrics_.failovers);
}

ShardEndpoint RouterService::active_endpoint(size_t idx) const {
  return ActiveEndpoint(*shards_[idx]);
}

uint64_t RouterService::shards_up() const {
  uint64_t up = 0;
  for (const auto& shard : shards_) {
    if (shard->up.load(std::memory_order_relaxed)) ++up;
  }
  return up;
}

uint64_t RouterService::TotalTransactions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->transactions.load(std::memory_order_relaxed);
  }
  return total;
}

obs::JsonValue RouterService::Handle(const obs::JsonValue& request,
                                     const service::RequestContext&) {
  metrics_.Inc(metrics_.requests_total);
  metrics_.MaybeRotateWindows(MicrosSince(start_));
  if (request.kind() != JsonValue::Kind::kObject || !request.Has("verb") ||
      request.at("verb").kind() != JsonValue::Kind::kString) {
    metrics_.Inc(metrics_.errors);
    return ErrorResponse(
        "", Status::InvalidArgument("request must be an object with a "
                                    "string \"verb\" member"));
  }
  const std::string& verb = request.at("verb").AsString();
  const auto begin = std::chrono::steady_clock::now();
  JsonValue response;
  size_t latency_slot;
  if (verb == "PING") {
    latency_slot = metrics_.latency_ping;
    metrics_.Inc(metrics_.requests_ping);
    response = HandlePing();
  } else if (verb == "COUNT") {
    latency_slot = metrics_.latency_count;
    metrics_.Inc(metrics_.requests_count);
    response = HandleCount(request);
  } else if (verb == "INSERT") {
    latency_slot = metrics_.latency_insert;
    metrics_.Inc(metrics_.requests_insert);
    response = HandleInsert(request);
  } else if (verb == "MINE") {
    latency_slot = metrics_.latency_mine;
    metrics_.Inc(metrics_.requests_mine);
    response = HandleMine(request);
  } else if (verb == "STATS") {
    latency_slot = metrics_.latency_stats;
    metrics_.Inc(metrics_.requests_stats);
    response = HandleStats();
  } else if (verb == "CHECKPOINT") {
    latency_slot = metrics_.latency_checkpoint;
    metrics_.Inc(metrics_.requests_checkpoint);
    response = HandleCheckpoint();
  } else if (verb == "SHARDINFO") {
    latency_slot = metrics_.latency_shardinfo;
    metrics_.Inc(metrics_.requests_shardinfo);
    response = HandleShardInfo();
  } else if (verb == "DUMP") {
    metrics_.Inc(metrics_.errors);
    return ErrorResponse(
        "DUMP", Status::InvalidArgument(
                    "DUMP is daemon-local; send it to a shard directly"));
  } else {
    metrics_.Inc(metrics_.errors);
    return ErrorResponse(verb,
                         Status::InvalidArgument("unknown verb: " + verb));
  }
  metrics_.ObserveLog2(latency_slot, MicrosSince(begin));
  if (!response.at("ok").AsBool()) metrics_.Inc(metrics_.errors);
  return response;
}

RouterService::ShardReply RouterService::CallShard(
    size_t idx, const obs::JsonValue& request) {
  ShardState& shard = *shards_[idx];
  const std::string verb = VerbOf(request);
  const bool idempotent = service::IsIdempotentVerb(verb);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::milliseconds(options_.fanout_deadline_ms);
  shard.requests.fetch_add(1, std::memory_order_relaxed);

  ShardReply reply;
  uint64_t jitter_state = options_.retry.jitter_seed + idx;
  uint32_t backoff_attempts = 0;
  bool hedged = false;
  bool failover_retried = false;
  Status failure = Status::Unavailable("fan-out deadline exhausted");
  while (true) {
    const int64_t remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining_ms <= 0) break;

    uint64_t session_gen = 0;
    service::ClientSession session = [&] {
      // Endpoint and generation are captured under ONE pool_mu hold, and
      // TryFailover flips the active endpoint inside the hold that bumps
      // the generation — so a session built here can never pair the
      // demoted primary's address with the post-failover generation (the
      // TOCTOU that would let a fenced primary serve, and pool into, the
      // promoted shard).
      std::lock_guard<std::mutex> lock(shard.pool_mu);
      session_gen = shard.pool_gen;
      if (!shard.idle.empty()) {
        service::ClientSession pooled = std::move(shard.idle.back());
        shard.idle.pop_back();
        return pooled;
      }
      const ShardEndpoint endpoint = ActiveEndpoint(shard);
      return service::ClientSession(endpoint.host, endpoint.port);
    }();

    // Hedge arming: the first idempotent attempt waits only hedge_ms; if
    // that fires, the straggler's socket is abandoned and the request is
    // re-issued once on a fresh connection with the remaining budget.
    const bool hedge_armed = idempotent && !hedged && options_.hedge_ms > 0 &&
                             options_.hedge_ms < remaining_ms;
    const int timeout_ms =
        hedge_armed ? options_.hedge_ms : static_cast<int>(remaining_ms);

    Result<JsonValue> response = session.Call(request, timeout_ms);
    if (response.ok()) {
      const bool backpressured = IsBackpressure(*response);
      {
        // The generation check drops sessions checked out before a
        // failover: a pooled socket to the demoted primary must never
        // serve a post-promotion request.
        std::lock_guard<std::mutex> lock(shard.pool_mu);
        if (session.connected() && shard.idle.size() < options_.pool_size &&
            shard.pool_gen == session_gen) {
          shard.idle.push_back(std::move(session));
        }
      }
      if (backpressured && backoff_attempts < options_.retry.retries) {
        failure = Status::Unavailable(
            "fan-out deadline exhausted while the shard shed load "
            "(backpressure)");
        ++backoff_attempts;
        uint64_t sleep_ms = service::RetryBackoffMs(
            options_.retry, backoff_attempts, &jitter_state);
        sleep_ms = std::min<uint64_t>(
            sleep_ms, static_cast<uint64_t>(std::max<int64_t>(
                          0, remaining_ms - 1)));
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        continue;
      }
      reply.has_response = true;
      reply.response = std::move(*response);
      size_t bucket = obs::Log2Bucket(MicrosSince(start));
      if (bucket > obs::DepthHistogram::kMaxTrackedDepth) bucket = 0;
      shard.latency[bucket].fetch_add(1, std::memory_order_relaxed);
      NoteShardSuccess(idx, reply.response, verb);
      return reply;
    }

    const Status& status = response.status();
    if (status.code() == StatusCode::kUnavailable) {
      // Silence: a connect or response timeout. A slow shard is not a
      // dead shard — a MINE can legitimately outlive the fan-out
      // deadline, an INSERT can stall on a slow fsync — and promotion
      // permanently fences the primary (in async replication it also
      // drops every acked-but-unshipped WAL record). So silence only
      // fails this leg: no down-marking, no failover. The background
      // prober owns that call, and only after failover_probe_failures
      // consecutive silent probes.
      if (hedge_armed) {
        hedged = true;
        shard.hedged.fetch_add(1, std::memory_order_relaxed);
        metrics_.Inc(metrics_.hedged_requests);
        continue;
      }
      failure = idempotent
                    ? status
                    : Status::Indeterminate(
                          "response timed out after the request was sent; "
                          "it may or may not have been applied (" +
                          status.message() + ")");
      break;
    }
    // Transport-level failure (connect refused/reset, peer closed): the
    // process is provably gone, not slow. Mark the shard down now, and
    // when a warm replica is standing by, promote it — TryFailover still
    // confirm-probes the primary once before PROMOTE, so a reset blip
    // against a live primary aborts there. Idempotent legs then retry
    // once on the new primary inside the original deadline; INSERT never
    // retries (at-most-once — the caller reconciles, and the NEXT insert
    // routes to the promoted replica).
    failure = status;
    shard.up.store(false, std::memory_order_relaxed);
    if (!failover_retried && TryFailover(idx) && idempotent) {
      failover_retried = true;
      continue;
    }
    break;
  }
  // Note what this loop did NOT do: a shard that answered with
  // backpressure is alive (shedding load is not downtime), and one that
  // merely timed out may be alive — neither is flipped down here.
  shard.errors.fetch_add(1, std::memory_order_relaxed);
  metrics_.Inc(metrics_.shard_errors);
  reply.status = failure;
  return reply;
}

void RouterService::NoteShardSuccess(size_t idx, const obs::JsonValue& response,
                                     const std::string& verb) {
  ShardState& shard = *shards_[idx];
  if (response.Has("term") && response.at("term").is_number()) {
    // Terms only ratchet up (monotonic fencing); a response can raise the
    // shard's term but never lower it.
    uint64_t term = response.at("term").AsUint();
    uint64_t current = shard.term.load(std::memory_order_relaxed);
    while (term > current &&
           !shard.term.compare_exchange_weak(current, term,
                                             std::memory_order_relaxed)) {
    }
  }
  if (response.Has("epoch") && response.at("epoch").is_number()) {
    shard.epoch.store(response.at("epoch").AsUint(),
                      std::memory_order_relaxed);
  }
  if (response.Has("visible_transactions")) {
    shard.transactions.store(UintField(response, "visible_transactions"),
                             std::memory_order_relaxed);
  } else if (response.Has("transactions") &&
             response.at("transactions").is_number()) {
    shard.transactions.store(response.at("transactions").AsUint(),
                             std::memory_order_relaxed);
  }
  const bool was_up = shard.up.exchange(true, std::memory_order_relaxed);
  if (!was_up && verb != "SHARDINFO") {
    // Down -> up transition: the shard may have restarted with recovered
    // (or different) content, so its Bloofi leaf is re-pulled before the
    // stale one can wrongly prune it.
    RefreshShard(idx);
  }
}

void RouterService::RefreshShard(size_t idx) {
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::String("SHARDINFO"));
  // Sample the leaf version BEFORE the fetch: any INSERT leaf update not
  // counted here was acked by the shard before the request below was even
  // sent, so the signature it answers with already contains those bits.
  const uint64_t version_before =
      shards_[idx]->leaf_version.load(std::memory_order_acquire);
  ShardReply reply = CallShard(idx, request);
  if (!reply.has_response || !reply.response.at("ok").AsBool()) return;
  Result<BitVector> signature = service::BitsFromHex(
      reply.response.at("signature").AsString(), config_.num_bits);
  if (!signature.ok()) return;
  std::unique_lock<std::shared_mutex> lock(tree_mu_);
  if (shards_[idx]->leaf_version.load(std::memory_order_relaxed) ==
      version_before) {
    // No INSERT touched the leaf while the fetch was in flight: a full
    // replace is safe, and lets a restarted shard's leaf shrink back to
    // its actual content.
    tree_.SetLeaf(idx, *signature);
  } else {
    // An INSERT ORed bits in mid-fetch and the snapshot may predate them;
    // replacing would clear bits of acked data and let COUNT wrongly
    // prune. OR the snapshot in instead — stale extra bits only cost a
    // false-positive fan-out leg.
    tree_.OrSignatureIntoLeaf(idx, *signature);
  }
}

bool RouterService::TryFailover(size_t idx) {
  ShardState& shard = *shards_[idx];
  if (!shard.entry.has_replica) return false;
  if (shard.on_replica.load(std::memory_order_acquire)) {
    // Already promoted (possibly by a racing leg): the shard is as failed
    // over as it will get; report whether it is serving.
    return shard.up.load(std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lock(shard.failover_mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Another thread is mid-promotion; do not stampede PROMOTE. The loser
    // reports failure and lets client-level retries find the new primary.
    return false;
  }
  if (shard.on_replica.load(std::memory_order_relaxed)) {
    return shard.up.load(std::memory_order_relaxed);
  }

  // Confirm the primary is actually dead before fencing it for good:
  // whatever evidence brought us here (a transport error on a request
  // leg, a run of failed background probes) may have been a blip, and a
  // promoted-past primary cannot be un-fenced without an operator. One
  // SHARDINFO answer at a current term aborts the failover and marks the
  // shard back up.
  {
    service::ClientSession confirm(shard.entry.primary.host,
                                   shard.entry.primary.port);
    JsonValue confirm_request = JsonValue::Object();
    confirm_request.Set("verb", JsonValue::String("SHARDINFO"));
    Result<JsonValue> alive =
        confirm.Call(confirm_request, options_.probe_timeout_ms);
    if (alive.ok() && alive->kind() == JsonValue::Kind::kObject &&
        alive->Has("ok") && alive->at("ok").AsBool() &&
        UintField(*alive, "term") >=
            shard.term.load(std::memory_order_relaxed)) {
      lock.unlock();
      NoteShardSuccess(idx, *alive, "PROBE");
      return false;
    }
  }

  // Probe the replica on a fresh connection (the pool belongs to the dead
  // primary).
  const ShardEndpoint replica = shard.entry.replica;
  Result<service::ClientSession> session =
      service::ClientSession::Connect(replica.host, replica.port);
  if (!session.ok()) return false;
  JsonValue info_request = JsonValue::Object();
  info_request.Set("verb", JsonValue::String("SHARDINFO"));
  Result<JsonValue> info = session->Call(info_request, options_.probe_timeout_ms);
  if (!info.ok() || info->kind() != JsonValue::Kind::kObject ||
      !info->Has("ok") || !info->at("ok").AsBool()) {
    return false;
  }
  // Never promote a replica of the wrong fleet: config identity is the
  // same invariant Init enforces for primaries.
  Result<BbsConfig> config = ConfigFromShardInfo(*info);
  if (!config.ok() || !SameHashConfig(config_, *config)) {
    std::fprintf(stderr,
                 "bbsrouter: shard %zu replica %s has a mismatched index "
                 "config; refusing to promote\n",
                 idx, replica.ToString().c_str());
    return false;
  }

  // PROMOTE at a term strictly above everything seen for this shard; the
  // daemon persists it and will fence any later PROMOTE (or the demoted
  // primary's stale term) below it.
  const uint64_t new_term =
      std::max(shard.term.load(std::memory_order_relaxed),
               UintField(*info, "term")) +
      1;
  JsonValue promote_request = JsonValue::Object();
  promote_request.Set("verb", JsonValue::String("PROMOTE"));
  promote_request.Set("term", JsonValue::Uint(new_term));
  Result<JsonValue> promoted =
      session->Call(promote_request, options_.probe_timeout_ms);
  if (!promoted.ok() || promoted->kind() != JsonValue::Kind::kObject ||
      !promoted->Has("ok") || !promoted->at("ok").AsBool()) {
    return false;
  }

  // Commit the failover: raise the fencing term, swap the active
  // endpoint, and invalidate every pooled connection to the old primary.
  // The endpoint flip happens INSIDE the pool_mu hold that bumps the
  // generation: checkout resolves endpoint and generation under the same
  // mutex, so no thread can pair the old endpoint with the new
  // generation (or vice versa).
  shard.term.store(new_term, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> pool_lock(shard.pool_mu);
    shard.idle.clear();
    ++shard.pool_gen;
    shard.on_replica.store(true, std::memory_order_release);
  }
  shard.probe_failures.store(0, std::memory_order_relaxed);
  metrics_.Inc(metrics_.failovers);
  std::fprintf(stderr,
               "bbsrouter: shard %zu failed over to replica %s at term %llu\n",
               idx, replica.ToString().c_str(),
               static_cast<unsigned long long>(new_term));
  lock.unlock();
  // Pull the promoted node's own signature (it may have applied WAL
  // records after the probe above) and mark the shard up — RefreshShard's
  // replace-or-OR rule keeps concurrently acked INSERT bits intact.
  RefreshShard(idx);
  return shard.up.load(std::memory_order_relaxed);
}

void RouterService::ProbeLoop() {
  // Deterministic jitter (tests stay reproducible): an LCG stepped per
  // backoff decision, seeded off the retry jitter seed.
  uint64_t rng = options_.retry.jitter_seed ^ 0x9e3779b97f4a7c15ull;
  std::vector<std::chrono::steady_clock::time_point> next_probe(
      shards_.size(), std::chrono::steady_clock::now());
  std::unique_lock<std::mutex> lock(prober_mu_);
  while (!prober_stop_.load(std::memory_order_relaxed)) {
    prober_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.probe_interval_ms),
        [this] { return prober_stop_.load(std::memory_order_relaxed); });
    if (prober_stop_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < shards_.size(); ++i) {
      ShardState& shard = *shards_[i];
      if (now < next_probe[i]) continue;
      // Up shards are probed too — a primary can die with no client
      // traffic to notice, and failover must not wait for a request. A
      // healthy probe is one SHARDINFO and no leaf work, so the health
      // check costs the fleet almost nothing.
      if (ProbeShard(i)) {
        shard.probe_failures.store(0, std::memory_order_relaxed);
        next_probe[i] = now;
        continue;
      }
      // Jittered exponential backoff, capped around 15s: a shard that
      // stays dead is not hammered, a fresh recovery is noticed within
      // about a second.
      const uint32_t failures =
          shard.probe_failures.fetch_add(1, std::memory_order_relaxed) + 1;
      uint64_t backoff_ms = static_cast<uint64_t>(options_.probe_interval_ms)
                            << std::min(failures, 4u);
      backoff_ms = std::min<uint64_t>(backoff_ms, 15'000);
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      const uint64_t jitter = (rng >> 33) % (backoff_ms / 2 + 1);
      next_probe[i] = now + std::chrono::milliseconds(backoff_ms / 2 + jitter);
    }
    lock.lock();
  }
}

bool RouterService::ProbeShard(size_t idx) {
  ShardState& shard = *shards_[idx];
  const ShardEndpoint endpoint = ActiveEndpoint(shard);
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::String("SHARDINFO"));
  service::ClientSession session(endpoint.host, endpoint.port);
  Result<JsonValue> response = session.Call(request, options_.probe_timeout_ms);
  if (!response.ok() || response->kind() != JsonValue::Kind::kObject ||
      !response->Has("ok") || !response->at("ok").AsBool()) {
    // The active endpoint failed its health check: it is down for
    // routing/STATS purposes even when no replica exists to promote —
    // a replica-less shard that dies with no client traffic must not
    // stay "up" until a real request flips it.
    shard.up.store(false, std::memory_order_relaxed);
    // Promotion policy (it permanently fences the primary): a
    // transport-level failure — connect refused/reset, peer closed; the
    // process is provably gone — drives failover immediately. Mere
    // silence (a connect or SHARDINFO timeout: kUnavailable) may just be
    // a slow or overloaded primary, so it only counts toward
    // failover_probe_failures consecutive failures. ProbeLoop increments
    // probe_failures after this returns false, so the pre-increment load
    // + 1 is the count including this probe.
    const bool transport_failure =
        !response.ok() &&
        response.status().code() != StatusCode::kUnavailable;
    if (transport_failure ||
        shard.probe_failures.load(std::memory_order_relaxed) + 1 >=
            options_.failover_probe_failures) {
      return TryFailover(idx);
    }
    return false;
  }
  // Fencing: an endpoint answering with a term below the shard's is a
  // stale demoted primary (e.g. restarted after the replica took over
  // behind a repaired map). It is never marked up — no read or write
  // reaches it until an operator re-adds it with a fresh term.
  const uint64_t term = UintField(*response, "term");
  if (term < shard.term.load(std::memory_order_relaxed)) {
    shard.up.store(false, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "bbsrouter: shard %zu endpoint %s is fenced (term %llu < "
                 "shard term %llu); leaving it down\n",
                 idx, endpoint.ToString().c_str(),
                 static_cast<unsigned long long>(term),
                 static_cast<unsigned long long>(
                     shard.term.load(std::memory_order_relaxed)));
    return false;
  }
  // A non-SHARDINFO verb name forces NoteShardSuccess's down->up path to
  // re-pull the Bloofi leaf — the shard's content may have moved while it
  // was dark.
  NoteShardSuccess(idx, *response, "PROBE");
  return true;
}

std::vector<RouterService::ShardReply> RouterService::FanOut(
    const std::vector<size_t>& targets, const obs::JsonValue& request) {
  const auto begin = std::chrono::steady_clock::now();
  std::vector<ShardReply> replies(shards_.size());
  if (targets.size() == 1) {
    replies[targets.front()] = CallShard(targets.front(), request);
  } else if (!targets.empty()) {
    std::vector<std::thread> threads;
    threads.reserve(targets.size());
    for (size_t idx : targets) {
      threads.emplace_back([this, idx, &replies, &request] {
        replies[idx] = CallShard(idx, request);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  metrics_.ObserveLog2(metrics_.fanout_latency, MicrosSince(begin));
  return replies;
}

std::vector<uint32_t> RouterService::QueryPositions(const Itemset& items) {
  std::vector<uint32_t> positions;
  {
    std::lock_guard<std::mutex> lock(hash_mu_);
    for (ItemId item : items) {
      const std::vector<uint32_t>& p = hash_->Positions(item);
      positions.insert(positions.end(), p.begin(), p.end());
    }
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  return positions;
}

std::vector<size_t> RouterService::MatchShards(
    const std::vector<uint32_t>& positions) {
  if (!options_.prune) {
    std::vector<size_t> all(shards_.size());
    std::iota(all.begin(), all.end(), size_t{0});
    return all;
  }
  std::vector<size_t> matched;
  {
    std::shared_lock<std::shared_mutex> lock(tree_mu_);
    matched = tree_.Query(positions);
  }
  if (matched.size() < shards_.size()) {
    const uint64_t pruned = shards_.size() - matched.size();
    metrics_.Inc(metrics_.pruned_shard_queries, pruned);
    // Per-shard attribution: walk the complement of the (sorted) match
    // list.
    size_t next = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (next < matched.size() && matched[next] == i) {
        ++next;
        continue;
      }
      shards_[i]->pruned.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return matched;
}

void RouterService::FinishClusterResponse(obs::JsonValue* response,
                                          size_t queried, size_t pruned,
                                          const std::vector<size_t>& missing) {
  const bool degraded = !missing.empty();
  if (degraded) metrics_.Inc(metrics_.degraded_responses);
  response->Set("degraded", JsonValue::Bool(degraded));
  JsonValue missing_json = JsonValue::Array();
  for (size_t idx : missing) missing_json.Append(JsonValue::Uint(idx));
  response->Set("missing_shards", std::move(missing_json));
  JsonValue cluster = JsonValue::Object();
  cluster.Set("shards_total", JsonValue::Uint(shards_.size()));
  cluster.Set("shards_queried", JsonValue::Uint(queried));
  cluster.Set("shards_pruned", JsonValue::Uint(pruned));
  response->Set("cluster", std::move(cluster));
}

obs::JsonValue RouterService::HandlePing() {
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::String("PING"));
  std::vector<size_t> all(shards_.size());
  std::iota(all.begin(), all.end(), size_t{0});
  std::vector<ShardReply> replies = FanOut(all, request);
  uint64_t epoch = 0;
  std::vector<size_t> missing;
  for (size_t i = 0; i < replies.size(); ++i) {
    if (replies[i].has_response && replies[i].response.at("ok").AsBool()) {
      epoch = std::max(epoch, UintField(replies[i].response, "epoch"));
    } else {
      missing.push_back(i);
      epoch = std::max(epoch,
                       shards_[i]->epoch.load(std::memory_order_relaxed));
    }
  }
  // The router itself is up, so PING succeeds even with shards dark — the
  // degraded trailer carries the bad news.
  JsonValue response = OkResponse("PING");
  response.Set("epoch", JsonValue::Uint(epoch));
  FinishClusterResponse(&response, shards_.size(), 0, missing);
  return response;
}

obs::JsonValue RouterService::HandleCount(const obs::JsonValue& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse("COUNT", Status::Unavailable("service is draining"));
  }
  Result<Itemset> items = ItemsFromJson(request.at("items"));
  if (!items.ok()) return ErrorResponse("COUNT", items.status());
  const std::vector<uint32_t> positions = QueryPositions(*items);
  const std::vector<size_t> targets = MatchShards(positions);
  const size_t pruned = shards_.size() - targets.size();

  std::vector<ShardReply> replies = FanOut(targets, request);

  // Deterministic shard-order reduction: counts add exactly across a
  // transaction-range partition, so this sum is bit-identical to one node
  // holding the concatenation.
  uint64_t count = 0;
  uint64_t visible = 0;
  uint64_t batch = 0;
  uint64_t queue_wait = 0;
  uint64_t epoch = 0;
  std::vector<size_t> missing;
  for (size_t idx : targets) {
    ShardReply& reply = replies[idx];
    if (!reply.has_response) {
      missing.push_back(idx);
      continue;
    }
    const JsonValue& r = reply.response;
    if (!r.at("ok").AsBool()) {
      if (ErrorCodeOf(r) ==
          StatusCodeName(StatusCode::kInvalidArgument)) {
        return r;  // a malformed query fails the same way everywhere
      }
      missing.push_back(idx);
      continue;
    }
    count += UintField(r, "count");
    visible += UintField(r, "visible_transactions");
    batch += UintField(r, "batch_size");
    queue_wait = std::max(queue_wait, UintField(r, "queue_wait_us"));
    epoch = std::max(epoch, UintField(r, "epoch"));
  }
  // A pruned shard contributes exactly zero matches (its AND-of-slices is
  // the zero vector), but its transactions still count toward the visible
  // denominator; cached totals stand in for the skipped round trip.
  {
    size_t next = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (next < targets.size() && targets[next] == i) {
        ++next;
        continue;
      }
      visible += shards_[i]->transactions.load(std::memory_order_relaxed);
      epoch = std::max(epoch,
                       shards_[i]->epoch.load(std::memory_order_relaxed));
    }
  }
  if (!missing.empty() && !options_.allow_degraded) {
    return ErrorResponse(
        "COUNT", Status::Unavailable("shards unreachable: [" +
                                     JoinIndices(missing) + "]"));
  }
  JsonValue response = OkResponse("COUNT");
  response.Set("items", ItemsToJson(*items));
  response.Set("count", JsonValue::Uint(count));
  response.Set("epoch", JsonValue::Uint(epoch));
  response.Set("visible_transactions", JsonValue::Uint(visible));
  response.Set("batch_size", JsonValue::Uint(batch));
  response.Set("queue_wait_us", JsonValue::Uint(queue_wait));
  FinishClusterResponse(&response, targets.size(), pruned, missing);
  return response;
}

obs::JsonValue RouterService::HandleInsert(const obs::JsonValue& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse("INSERT",
                         Status::Unavailable("service is draining"));
  }
  // The range partition's tail shard takes all new transactions: shard i
  // holding transactions before shard i+1's is the invariant every merge
  // leans on.
  const size_t tail = shards_.size() - 1;
  ShardReply reply = CallShard(tail, request);
  if (!reply.has_response) return ErrorResponse("INSERT", reply.status);
  if (!reply.response.at("ok").AsBool()) return reply.response;

  // Keep pruning truthful: OR the inserted items' positions into the tail
  // shard's Bloofi leaf before acknowledging, so a COUNT racing this
  // INSERT can never be pruned away from data it should see.
  Itemset inserted;
  if (request.Has("transactions") &&
      request.at("transactions").kind() == JsonValue::Kind::kArray) {
    const JsonValue& txns = request.at("transactions");
    for (size_t i = 0; i < txns.size(); ++i) {
      Result<Itemset> txn = ItemsFromJson(txns.at(i));
      if (txn.ok()) {
        inserted.insert(inserted.end(), txn->begin(), txn->end());
      }
    }
    Canonicalize(&inserted);
  } else if (request.Has("items")) {
    Result<Itemset> txn = ItemsFromJson(request.at("items"));
    if (txn.ok()) inserted = std::move(*txn);
  }
  if (!inserted.empty()) {
    const std::vector<uint32_t> positions = QueryPositions(inserted);
    std::unique_lock<std::shared_mutex> lock(tree_mu_);
    shards_[tail]->leaf_version.fetch_add(1, std::memory_order_release);
    tree_.OrIntoLeaf(tail, positions);
  }

  JsonValue response = reply.response;
  response.Set("shard", JsonValue::Uint(tail));
  // The shard reported its local total; clients of the fleet see the
  // cluster-wide one.
  response.Set("transactions", JsonValue::Uint(TotalTransactions()));
  return response;
}

obs::JsonValue RouterService::HandleMine(const obs::JsonValue& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse("MINE", Status::Unavailable("service is draining"));
  }
  if (!mine_enabled_) {
    return ErrorResponse("MINE",
                         Status::InvalidArgument(
                             "MINE requires every shard to run with --db"));
  }
  double min_support = options_.default_min_support;
  if (request.Has("minsup")) {
    const JsonValue& minsup = request.at("minsup");
    if (!minsup.is_number() || minsup.AsDouble() <= 0 ||
        minsup.AsDouble() > 1) {
      return ErrorResponse("MINE", Status::InvalidArgument(
                                       "\"minsup\" must be in (0, 1]"));
    }
    min_support = minsup.AsDouble();
  }
  size_t top = options_.mine_top;
  if (request.Has("top")) {
    const JsonValue& requested = request.at("top");
    if (!requested.is_number() || requested.AsInt() < 1) {
      return ErrorResponse(
          "MINE", Status::InvalidArgument("\"top\" must be a positive int"));
    }
    top = static_cast<size_t>(requested.AsUint());
  }

  // The exchange computes τ from round-1 totals but round-2 counts scan
  // the shards' databases at round-2 time, so concurrent INSERTs between
  // the rounds would mix snapshots. Growth is detected (a round-2 shard
  // reporting a transaction total that moved since round 1) and the whole
  // exchange re-runs — the retry's round 1 sees the newer data. A pass
  // that still lands inconsistent after the retry budget is answered
  // anyway, flagged exchange.snapshot_consistent = false.
  JsonValue response;
  for (uint32_t attempt = 0;; ++attempt) {
    bool consistent = true;
    response = MineExchange(min_support, top, attempt, &consistent);
    if (!response.at("ok").AsBool() || consistent ||
        attempt >= options_.mine_snapshot_retries) {
      return response;
    }
  }
}

obs::JsonValue RouterService::MineExchange(double min_support, size_t top,
                                           uint32_t attempt,
                                           bool* consistent) {
  // Round 1: every shard mines at the SAME relative minsup (its local
  // τ_i = ceil(minsup·n_i)), untruncated. Pigeonhole guarantees the union
  // of the local frequent sets contains every globally frequent pattern
  // (cluster/merge.h has the argument).
  JsonValue round1_request = JsonValue::Object();
  round1_request.Set("verb", JsonValue::String("MINE"));
  round1_request.Set("minsup", JsonValue::Double(min_support));
  round1_request.Set("top", JsonValue::Uint(options_.mine_round1_top));
  std::vector<size_t> all(shards_.size());
  std::iota(all.begin(), all.end(), size_t{0});
  std::vector<ShardReply> replies = FanOut(all, round1_request);

  std::vector<ShardMineResult> round1(shards_.size());
  std::vector<size_t> missing;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!replies[i].has_response) {
      missing.push_back(i);
      continue;
    }
    const JsonValue& r = replies[i].response;
    if (!r.at("ok").AsBool()) {
      if (ErrorCodeOf(r) ==
          StatusCodeName(StatusCode::kInvalidArgument)) {
        return r;  // e.g. a shard without --db: a config error, not churn
      }
      missing.push_back(i);
      continue;
    }
    const JsonValue& patterns = r.at("patterns");
    if (UintField(r, "total_frequent") != patterns.size()) {
      return ErrorResponse(
          "MINE",
          Status::Internal(
              "shard " + std::to_string(i) +
              " truncated its round-1 result; completeness (and "
              "bit-identity) needs a larger --mine-round1-top"));
    }
    round1[i].reachable = true;
    round1[i].transactions = UintField(r, "transactions");
    for (size_t p = 0; p < patterns.size(); ++p) {
      Result<Itemset> items = ItemsFromJson(patterns.at(p).at("items"));
      if (!items.ok()) return ErrorResponse("MINE", items.status());
      round1[i].supports[std::move(*items)] =
          UintField(patterns.at(p), "support");
    }
  }
  if (missing.size() == shards_.size()) {
    return ErrorResponse("MINE",
                         Status::Unavailable("no shard reachable"));
  }
  if (!missing.empty() && !options_.allow_degraded) {
    return ErrorResponse(
        "MINE", Status::Unavailable("shards unreachable: [" +
                                    JoinIndices(missing) + "]"));
  }

  // Global τ over the transactions actually visible (the full total when
  // the fleet is healthy — then bit-identical to the oracle's threshold).
  uint64_t total = 0;
  for (const ShardMineResult& shard : round1) {
    if (shard.reachable) total += shard.transactions;
  }
  const uint64_t tau = AbsoluteThreshold(min_support, total);
  const std::vector<Itemset> candidates = UnionCandidates(round1);

  // Round 2: each shard exact-counts only the candidates it did not
  // already report (its round-1 supports are exact). Shards with nothing
  // missing skip the round entirely.
  std::vector<std::map<Itemset, uint64_t>> round2(shards_.size());
  std::vector<std::vector<Itemset>> needed(shards_.size());
  std::vector<size_t> round2_targets;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!round1[i].reachable) continue;
    needed[i] = MissingCandidates(round1[i], candidates);
    if (!needed[i].empty()) round2_targets.push_back(i);
  }
  uint64_t round2_requests = 0;
  std::atomic<bool> snapshot_moved{false};
  if (!round2_targets.empty()) {
    std::vector<std::thread> threads;
    std::mutex missing_mu;
    threads.reserve(round2_targets.size());
    for (size_t idx : round2_targets) {
      threads.emplace_back([this, idx, &needed, &round1, &round2, &missing,
                            &missing_mu, &snapshot_moved] {
        JsonValue round2_request = JsonValue::Object();
        round2_request.Set("verb", JsonValue::String("MINE"));
        JsonValue candidates_json = JsonValue::Array();
        for (const Itemset& candidate : needed[idx]) {
          candidates_json.Append(ItemsToJson(candidate));
        }
        round2_request.Set("candidates", std::move(candidates_json));
        ShardReply reply = CallShard(idx, round2_request);
        if (!reply.has_response || !reply.response.at("ok").AsBool()) {
          // Round-1 supports still stand; the gap is surfaced as degraded.
          std::lock_guard<std::mutex> lock(missing_mu);
          missing.push_back(idx);
          return;
        }
        // The shard echoes the transaction total its candidate scan
        // covered; movement since round 1 means an INSERT landed between
        // the rounds and this pass mixes snapshots.
        if (UintField(reply.response, "transactions") !=
            round1[idx].transactions) {
          snapshot_moved.store(true, std::memory_order_relaxed);
        }
        const JsonValue& supports = reply.response.at("supports");
        for (size_t c = 0;
             c < needed[idx].size() && c < supports.size(); ++c) {
          round2[idx][needed[idx][c]] = supports.at(c).AsUint();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    round2_requests = round2_targets.size();
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
    if (!missing.empty() && !options_.allow_degraded) {
      return ErrorResponse(
          "MINE", Status::Unavailable("shards unreachable: [" +
                                      JoinIndices(missing) + "]"));
    }
  }

  std::vector<Pattern> merged =
      MergeGlobalPatterns(round1, round2, candidates, tau);
  const size_t total_frequent = merged.size();
  if (merged.size() > top) merged.resize(top);
  JsonValue patterns = JsonValue::Array();
  for (const Pattern& pattern : merged) {
    JsonValue entry = JsonValue::Object();
    entry.Set("items", ItemsToJson(pattern.items));
    entry.Set("support", JsonValue::Uint(pattern.support));
    patterns.Append(std::move(entry));
  }
  JsonValue response = OkResponse("MINE");
  response.Set("min_support", JsonValue::Double(min_support));
  response.Set("transactions", JsonValue::Uint(total));
  response.Set("total_frequent", JsonValue::Uint(total_frequent));
  response.Set("patterns", std::move(patterns));
  // Exchange diagnostics (additive; the oracle-identity tests compare the
  // daemon fields above).
  *consistent = !snapshot_moved.load(std::memory_order_relaxed);
  JsonValue exchange = JsonValue::Object();
  exchange.Set("tau", JsonValue::Uint(tau));
  exchange.Set("candidates", JsonValue::Uint(candidates.size()));
  exchange.Set("round2_requests", JsonValue::Uint(round2_requests));
  exchange.Set("snapshot_consistent", JsonValue::Bool(*consistent));
  exchange.Set("snapshot_retries", JsonValue::Uint(attempt));
  response.Set("exchange", std::move(exchange));
  FinishClusterResponse(&response, shards_.size(), 0, missing);
  return response;
}

obs::JsonValue RouterService::HandleCheckpoint() {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse("CHECKPOINT",
                         Status::Unavailable("service is draining"));
  }
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::String("CHECKPOINT"));
  std::vector<size_t> all(shards_.size());
  std::iota(all.begin(), all.end(), size_t{0});
  std::vector<ShardReply> replies = FanOut(all, request);
  uint64_t epoch = 0;
  uint64_t checkpoints = 0;
  std::vector<size_t> failed;
  for (size_t i = 0; i < replies.size(); ++i) {
    if (!replies[i].has_response ||
        !replies[i].response.at("ok").AsBool()) {
      failed.push_back(i);
      continue;
    }
    epoch = std::max(epoch, UintField(replies[i].response, "epoch"));
    checkpoints += UintField(replies[i].response, "checkpoints");
  }
  if (!failed.empty()) {
    return ErrorResponse(
        "CHECKPOINT",
        Status::Unavailable("checkpoint failed on shards: [" +
                            JoinIndices(failed) + "]"));
  }
  JsonValue response = OkResponse("CHECKPOINT");
  response.Set("epoch", JsonValue::Uint(epoch));
  response.Set("transactions", JsonValue::Uint(TotalTransactions()));
  response.Set("checkpoints", JsonValue::Uint(checkpoints));
  return response;
}

obs::JsonValue RouterService::HandleShardInfo() {
  // The fleet's own SHARDINFO: the root OR signature plus totals, so a
  // router is itself a valid shard of a bigger router.
  uint64_t epoch = 0;
  for (const auto& shard : shards_) {
    epoch = std::max(epoch, shard->epoch.load(std::memory_order_relaxed));
  }
  JsonValue config_json = JsonValue::Object();
  config_json.Set("bits", JsonValue::Uint(config_.num_bits));
  config_json.Set("hashes", JsonValue::Uint(config_.num_hashes));
  config_json.Set("hash_kind",
                  JsonValue::Uint(static_cast<uint64_t>(config_.hash_kind)));
  config_json.Set("seed", JsonValue::Uint(config_.seed));
  JsonValue response = OkResponse("SHARDINFO");
  response.Set("epoch", JsonValue::Uint(epoch));
  response.Set("transactions", JsonValue::Uint(TotalTransactions()));
  response.Set("segments", JsonValue::Uint(shards_.size()));
  response.Set("shards", JsonValue::Uint(shards_.size()));
  response.Set("mine_enabled", JsonValue::Bool(mine_enabled_));
  response.Set("config", std::move(config_json));
  response.Set("signature_bits", JsonValue::Uint(config_.num_bits));
  {
    std::shared_lock<std::shared_mutex> lock(tree_mu_);
    response.Set("signature",
                 JsonValue::String(service::BitsToHex(tree_.root_signature())));
  }
  return response;
}

obs::JsonValue RouterService::HandleStats() {
  JsonValue response = OkResponse("STATS");
  response.Set("report", BuildStatsReport());
  return response;
}

obs::JsonValue RouterService::BuildStatsReport() const {
  service::ServiceReportContext ctx;
  ctx.kind = "bbsrouter_service";
  ctx.cluster_role = "router";
  ctx.uptime_seconds = static_cast<double>(MicrosSince(start_)) / 1e6;
  ctx.transactions = TotalTransactions();
  ctx.segments = shards_.size();
  ctx.draining = draining_.load(std::memory_order_relaxed);
  ctx.mine_enabled = mine_enabled_;
  ctx.index_backend = "none";
  ctx.shards_total = shards_.size();
  ctx.shards_up = shards_up();
  JsonValue shards_json = JsonValue::Array();
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardState& shard = *shards_[i];
    ctx.epoch = std::max(ctx.epoch,
                         shard.epoch.load(std::memory_order_relaxed));
    const bool failed_over = shard.on_replica.load(std::memory_order_acquire);
    JsonValue entry = JsonValue::Object();
    entry.Set("shard", JsonValue::Uint(i));
    // "endpoint" stays the address requests actually route to (scrapers
    // predate replicas); primary/replica/active spell the topology out.
    entry.Set("endpoint", JsonValue::String(ActiveEndpoint(shard).ToString()));
    entry.Set("primary", JsonValue::String(shard.entry.primary.ToString()));
    if (shard.entry.has_replica) {
      entry.Set("replica", JsonValue::String(shard.entry.replica.ToString()));
    }
    entry.Set("active",
              JsonValue::String(failed_over ? "replica" : "primary"));
    entry.Set("term",
              JsonValue::Uint(shard.term.load(std::memory_order_relaxed)));
    entry.Set("failed_over", JsonValue::Bool(failed_over));
    entry.Set("up",
              JsonValue::Bool(shard.up.load(std::memory_order_relaxed)));
    entry.Set("transactions",
              JsonValue::Uint(
                  shard.transactions.load(std::memory_order_relaxed)));
    entry.Set("epoch",
              JsonValue::Uint(shard.epoch.load(std::memory_order_relaxed)));
    entry.Set("requests",
              JsonValue::Uint(
                  shard.requests.load(std::memory_order_relaxed)));
    entry.Set("errors",
              JsonValue::Uint(shard.errors.load(std::memory_order_relaxed)));
    entry.Set("pruned_queries",
              JsonValue::Uint(shard.pruned.load(std::memory_order_relaxed)));
    entry.Set("hedged",
              JsonValue::Uint(shard.hedged.load(std::memory_order_relaxed)));
    std::vector<uint64_t> buckets(shard.latency.size());
    for (size_t b = 0; b < shard.latency.size(); ++b) {
      buckets[b] = shard.latency[b].load(std::memory_order_relaxed);
    }
    entry.Set("latency_us", ShardLatencyJson(buckets));
    shards_json.Append(std::move(entry));
  }
  ctx.cluster_shards = std::move(shards_json);
  // The router's replication view: whether any shard has a warm replica,
  // and how many promotions this router has driven.
  {
    bool any_replica = false;
    for (const auto& shard : shards_) {
      if (shard->entry.has_replica) any_replica = true;
    }
    JsonValue replication = JsonValue::Object();
    replication.Set("enabled", JsonValue::Bool(any_replica));
    replication.Set("role", JsonValue::String("router"));
    replication.Set("failovers",
                    JsonValue::Uint(metrics_.counter(metrics_.failovers)));
    ctx.replication = std::move(replication);
  }
  if (const std::atomic<uint64_t>* live =
          live_connections_.load(std::memory_order_acquire);
      live != nullptr) {
    ctx.open_connections = live->load(std::memory_order_relaxed);
  }
  ctx.window_now_us = MicrosSince(start_);
  metrics_.MaybeRotateWindows(ctx.window_now_us);
  return BuildServiceReport(ctx, metrics_);
}

}  // namespace bbsmine::cluster
