// The bbsrouter request handler: one process fronting N bbsmined shards.
//
// RouterService implements the same RequestHandler interface BbsService
// does, so the daemon's SocketServer serves it unchanged and unmodified
// clients (bbsmine client, bbsbench) talk to a fleet exactly as they talk
// to one daemon. Downstream it speaks the same wire protocol over a
// per-shard pool of persistent ClientSessions.
//
// Verb semantics (docs/CLUSTER.md is the spec):
//   COUNT  — Bloofi-prune shards whose signatures cannot cover the query,
//            fan out to the rest in parallel, sum counts in shard order.
//            Bit-identical to a single node over the concatenated data.
//   MINE   — two-round global-τ candidate exchange (cluster/merge.h).
//            Bit-identical patterns, supports, order, and truncation.
//   INSERT — routes to the LAST shard (tail of the transaction-range
//            partition) and ORs the new items' positions into that
//            shard's Bloofi leaf so pruning never goes stale.
//   PING   — fans out (doubling as a health sweep); ok as long as the
//            router itself is up.
//   STATS  — the schema-v1 service report with kind "bbsrouter_service"
//            and a populated cluster section (per-shard detail included).
//   SHARDINFO — answers with the root OR signature and fleet totals, so
//            routers stack (a router is a valid "shard" of a bigger one).
//   CHECKPOINT — fans out to every shard; fails listing the shards that
//            failed.
//   DUMP   — InvalidArgument (per-connection flight recording is a
//            daemon-local concern).
//
// Robustness: every fan-out leg runs under a per-leg deadline; idempotent
// legs may hedge (re-issue on a fresh connection after hedge_ms of
// silence — the straggler's socket is abandoned, the at-most-once rules
// from service/client.h still hold because only idempotent verbs hedge).
// When shards stay unreachable the router answers anyway from the
// survivors, with "degraded": true and the missing shard list, unless
// configured to require the full fleet.

#ifndef BBSMINE_CLUSTER_ROUTER_H_
#define BBSMINE_CLUSTER_ROUTER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/bloofi_tree.h"
#include "cluster/merge.h"
#include "cluster/shard_map.h"
#include "core/bbs_config.h"
#include "core/bloom_hash.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/metrics.h"
#include "service/server.h"

namespace bbsmine::cluster {

struct RouterOptions {
  /// Per-leg retry/backoff policy (backpressure retries, timeout policy);
  /// timeout_ms inside is ignored — the fan-out deadline governs.
  service::RetryOptions retry;
  /// Total budget per downstream leg, hedge included.
  int fanout_deadline_ms = 5000;
  /// After this many ms of silence an idempotent leg is re-issued on a
  /// fresh connection (0 = no hedging).
  int hedge_ms = 0;
  /// Bloofi pruning (off = every COUNT fans out everywhere; answers are
  /// identical either way — that equivalence is pinned by tests).
  bool prune = true;
  size_t branching = 4;
  /// When false a missing shard turns partial answers into Unavailable
  /// errors instead of degraded responses.
  bool allow_degraded = true;
  /// MINE defaults, mirroring ServiceOptions.
  size_t mine_top = 10;
  double default_min_support = 0.003;
  /// Round-1 "top" sent to shards: must exceed any shard's local frequent
  /// set size or completeness (and thus bit-identity) is lost; the router
  /// verifies shards did not truncate and fails the query if one did.
  uint64_t mine_round1_top = 50'000'000;
  /// The two-round MINE exchange assumes the database does not grow
  /// between rounds (τ comes from round-1 totals, round-2 counts scan at
  /// round-2 time). When a round-2 shard reports a transaction total that
  /// moved since round 1, the whole exchange re-runs — up to this many
  /// extra passes — before answering with
  /// exchange.snapshot_consistent = false.
  uint32_t mine_snapshot_retries = 2;
  /// Startup handshake patience: per shard, how many connect attempts
  /// spaced connect_backoff_ms apart before Init gives up on it.
  uint32_t connect_retries = 40;
  uint32_t connect_backoff_ms = 250;
  /// Sessions kept pooled per shard.
  size_t pool_size = 8;
  service::ServiceMetrics::WindowOptions stats_windows;
};

class RouterService : public service::RequestHandler {
 public:
  RouterService(ShardMap map, const RouterOptions& options);

  /// The startup handshake: SHARDINFO every shard (with patience — shards
  /// may still be booting), verify all reachable shards share one
  /// BbsConfig, and build the Bloofi tree. Fails when no shard is
  /// reachable or configs diverge; shards that stay unreachable enter
  /// service marked down with an all-ones (never-pruned) signature.
  Status Init();

  obs::JsonValue Handle(const obs::JsonValue& request) {
    return Handle(request, service::RequestContext{});
  }
  obs::JsonValue Handle(const obs::JsonValue& request,
                        const service::RequestContext& ctx) override;

  service::ServiceMetrics& metrics() override { return metrics_; }
  const service::ServiceMetrics& metrics() const { return metrics_; }

  void AttachConnectionCounter(
      const std::atomic<uint64_t>* counter) override {
    live_connections_.store(counter, std::memory_order_release);
  }

  /// The schema-v1 report (STATS payload / shutdown artifact), kind
  /// "bbsrouter_service", cluster section populated.
  obs::JsonValue BuildStatsReport() const;

  /// Stops accepting work: every verb but PING/STATS answers Unavailable.
  void Drain() { draining_.store(true, std::memory_order_relaxed); }

  size_t num_shards() const { return shards_.size(); }
  uint64_t shards_up() const;
  /// Cluster-wide transaction total (cached from the latest responses).
  uint64_t TotalTransactions() const;
  const BbsConfig& shard_config() const { return config_; }

 private:
  /// One downstream exchange outcome.
  struct ShardReply {
    bool has_response = false;
    obs::JsonValue response;
    Status status = Status::Ok();
  };

  struct ShardState {
    ShardEndpoint endpoint;
    std::mutex pool_mu;
    std::vector<service::ClientSession> idle;  // guarded by pool_mu
    std::atomic<bool> up{false};
    std::atomic<uint64_t> transactions{0};
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> pruned{0};
    std::atomic<uint64_t> hedged{0};
    /// Bumped (under tree_mu_) every time an INSERT ORs new positions
    /// into this shard's Bloofi leaf. RefreshShard samples it before
    /// fetching SHARDINFO: if it moved by apply time, an acked INSERT
    /// raced the fetch and the snapshot may predate that insert's bits,
    /// so the leaf is ORed instead of replaced (bits are never cleared).
    std::atomic<uint64_t> leaf_version{0};
    // Per-shard downstream latency, log2 µs buckets; slot 0 = overflow
    // (the ServiceMetrics histogram layout).
    std::array<std::atomic<uint64_t>,
               obs::DepthHistogram::kMaxTrackedDepth + 1>
        latency{};
  };

  obs::JsonValue HandlePing();
  obs::JsonValue HandleCount(const obs::JsonValue& request);
  obs::JsonValue HandleInsert(const obs::JsonValue& request);
  obs::JsonValue HandleMine(const obs::JsonValue& request);

  /// One full two-round candidate exchange at `min_support`, truncated to
  /// `top`. Sets *consistent to false when a round-2 shard's transaction
  /// total moved between the rounds (concurrent INSERTs) — HandleMine
  /// then re-runs the exchange, bounded by mine_snapshot_retries;
  /// `attempt` is echoed as exchange.snapshot_retries.
  obs::JsonValue MineExchange(double min_support, size_t top,
                              uint32_t attempt, bool* consistent);
  obs::JsonValue HandleStats();
  obs::JsonValue HandleCheckpoint();
  obs::JsonValue HandleShardInfo();

  /// One leg: check a session out of shard `idx`'s pool, exchange
  /// `request` under the fan-out deadline with backpressure retries and
  /// (for idempotent verbs) hedging, update health/latency bookkeeping.
  ShardReply CallShard(size_t idx, const obs::JsonValue& request);

  /// Runs CallShard for every index in `targets` in parallel; results land
  /// at their shard index in the returned vector (non-targets stay
  /// empty-handed with has_response == false).
  std::vector<ShardReply> FanOut(const std::vector<size_t>& targets,
                                 const obs::JsonValue& request);

  /// The sorted union of the query items' hash positions (guards the
  /// non-thread-safe BloomHashFamily cache).
  std::vector<uint32_t> QueryPositions(const Itemset& items);

  /// Bloofi-matched shard indices for the query (everything when pruning
  /// is off); records pruned-shard counters.
  std::vector<size_t> MatchShards(const std::vector<uint32_t>& positions);

  /// Re-pulls SHARDINFO from shard `idx` and refreshes its Bloofi leaf —
  /// run when a shard transitions down -> up (its content may have moved
  /// while we could not see it). The leaf is fully replaced only when no
  /// INSERT updated it while the fetch was in flight (leaf_version
  /// check); otherwise the fetched signature is ORed in, so a snapshot
  /// that predates a concurrently acked INSERT can never clear that
  /// insert's bits.
  void RefreshShard(size_t idx);

  void NoteShardSuccess(size_t idx, const obs::JsonValue& response,
                        const std::string& verb);

  /// Appends degraded/cluster trailer fields shared by COUNT and MINE.
  void FinishClusterResponse(obs::JsonValue* response, size_t queried,
                             size_t pruned,
                             const std::vector<size_t>& missing);

  ShardMap map_;
  RouterOptions options_;
  service::ServiceMetrics metrics_;
  std::vector<std::unique_ptr<ShardState>> shards_;

  BbsConfig config_;
  bool mine_enabled_ = false;
  std::unique_ptr<BloomHashFamily> hash_;
  mutable std::mutex hash_mu_;

  BloofiTree tree_;
  mutable std::shared_mutex tree_mu_;

  std::atomic<bool> draining_{false};
  std::atomic<const std::atomic<uint64_t>*> live_connections_{nullptr};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bbsmine::cluster

#endif  // BBSMINE_CLUSTER_ROUTER_H_
