// The bbsrouter request handler: one process fronting N bbsmined shards.
//
// RouterService implements the same RequestHandler interface BbsService
// does, so the daemon's SocketServer serves it unchanged and unmodified
// clients (bbsmine client, bbsbench) talk to a fleet exactly as they talk
// to one daemon. Downstream it speaks the same wire protocol over a
// per-shard pool of persistent ClientSessions.
//
// Verb semantics (docs/CLUSTER.md is the spec):
//   COUNT  — Bloofi-prune shards whose signatures cannot cover the query,
//            fan out to the rest in parallel, sum counts in shard order.
//            Bit-identical to a single node over the concatenated data.
//   MINE   — two-round global-τ candidate exchange (cluster/merge.h).
//            Bit-identical patterns, supports, order, and truncation.
//   INSERT — routes to the LAST shard (tail of the transaction-range
//            partition) and ORs the new items' positions into that
//            shard's Bloofi leaf so pruning never goes stale.
//   PING   — fans out (doubling as a health sweep); ok as long as the
//            router itself is up.
//   STATS  — the schema-v1 service report with kind "bbsrouter_service"
//            and a populated cluster section (per-shard detail included).
//   SHARDINFO — answers with the root OR signature and fleet totals, so
//            routers stack (a router is a valid "shard" of a bigger one).
//   CHECKPOINT — fans out to every shard; fails listing the shards that
//            failed.
//   DUMP   — InvalidArgument (per-connection flight recording is a
//            daemon-local concern).
//
// Robustness: every fan-out leg runs under a per-leg deadline; idempotent
// legs may hedge (re-issue on a fresh connection after hedge_ms of
// silence — the straggler's socket is abandoned, the at-most-once rules
// from service/client.h still hold because only idempotent verbs hedge).
// When shards stay unreachable the router answers anyway from the
// survivors, with "degraded": true and the missing shard list, unless
// configured to require the full fleet.
//
// Failover: a shard spec may name a warm replica ("host:port/host:port",
// a bbsmined following the primary over WALSTREAM). When the primary
// goes dark the router promotes the replica without operator action.
// Promotion permanently fences the primary, so the trigger is evidence
// the primary is DEAD, never that it is slow: a transport-level failure
// (connect refused/reset, peer closed — the process is provably gone)
// triggers it immediately, while silence (a connect or response timeout)
// only marks the leg failed and leaves promotion to the background
// prober, which requires failover_probe_failures consecutive silent
// probes first. The promotion sequence:
//   1. confirm-probe the primary one last time with SHARDINFO — if it
//      answers at a current term the failover is aborted and the shard
//      marked back up (it was a blip, not a death);
//   2. probe the replica with SHARDINFO (config identity checked — a
//      replica of the wrong fleet is never promoted);
//   3. PROMOTE it at term = shard term + 1 (terms are monotonic per
//      shard; the daemon persists its term and rejects PROMOTE below it);
//   4. swap the shard's active endpoint, drop pooled connections to the
//      dead primary, and rebuild the shard's Bloofi leaf from the
//      replica's signature (replace-or-OR, same rule as RefreshShard).
// The demoted primary is FENCED by its stale term: when it restarts, the
// prober sees term < shard term and refuses to mark it up, so no read or
// write ever reaches a stale primary after promotion. Idempotent legs
// retry on the promoted replica inside the original fan-out deadline;
// INSERT never retries (at-most-once), the next INSERT routes to the new
// primary. A background prober re-probes down shards with jittered
// exponential backoff so recovered or promoted shards rejoin (and their
// leaves refresh) without client traffic — and drives promotion when the
// fleet is idle.

#ifndef BBSMINE_CLUSTER_ROUTER_H_
#define BBSMINE_CLUSTER_ROUTER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/bloofi_tree.h"
#include "cluster/merge.h"
#include "cluster/shard_map.h"
#include "core/bbs_config.h"
#include "core/bloom_hash.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/metrics.h"
#include "service/server.h"

namespace bbsmine::cluster {

struct RouterOptions {
  /// Per-leg retry/backoff policy (backpressure retries, timeout policy);
  /// timeout_ms inside is ignored — the fan-out deadline governs.
  service::RetryOptions retry;
  /// Total budget per downstream leg, hedge included.
  int fanout_deadline_ms = 5000;
  /// After this many ms of silence an idempotent leg is re-issued on a
  /// fresh connection (0 = no hedging).
  int hedge_ms = 0;
  /// Bloofi pruning (off = every COUNT fans out everywhere; answers are
  /// identical either way — that equivalence is pinned by tests).
  bool prune = true;
  size_t branching = 4;
  /// When false a missing shard turns partial answers into Unavailable
  /// errors instead of degraded responses.
  bool allow_degraded = true;
  /// MINE defaults, mirroring ServiceOptions.
  size_t mine_top = 10;
  double default_min_support = 0.003;
  /// Round-1 "top" sent to shards: must exceed any shard's local frequent
  /// set size or completeness (and thus bit-identity) is lost; the router
  /// verifies shards did not truncate and fails the query if one did.
  uint64_t mine_round1_top = 50'000'000;
  /// The two-round MINE exchange assumes the database does not grow
  /// between rounds (τ comes from round-1 totals, round-2 counts scan at
  /// round-2 time). When a round-2 shard reports a transaction total that
  /// moved since round 1, the whole exchange re-runs — up to this many
  /// extra passes — before answering with
  /// exchange.snapshot_consistent = false.
  uint32_t mine_snapshot_retries = 2;
  /// Startup handshake patience: per shard, how many connect attempts
  /// spaced connect_backoff_ms apart before Init gives up on it.
  uint32_t connect_retries = 40;
  uint32_t connect_backoff_ms = 250;
  /// Sessions kept pooled per shard.
  size_t pool_size = 8;
  /// Background health-probe cadence (0 disables the prober thread). Up
  /// shards are probed at this interval so a primary that dies with no
  /// client traffic still fails over promptly; consecutive failures back
  /// a down shard's cadence off exponentially (jittered, capped at ~15s)
  /// so a dead shard is not hammered while a freshly recovered one
  /// rejoins within ~a second.
  uint32_t probe_interval_ms = 1000;
  /// Per-probe SHARDINFO budget.
  int probe_timeout_ms = 1000;
  /// Consecutive failed background probes of a SILENT primary (connect or
  /// SHARDINFO timeout — the process may be alive but slow) before the
  /// prober attempts promotion. Transport-level failures (connect refused
  /// or reset: the process is provably gone) fail over immediately and do
  /// not wait for this threshold. Promotion fences the primary
  /// permanently, so a latency blip must never be enough to trigger it.
  uint32_t failover_probe_failures = 3;
  service::ServiceMetrics::WindowOptions stats_windows;
};

class RouterService : public service::RequestHandler {
 public:
  RouterService(ShardMap map, const RouterOptions& options);
  ~RouterService();

  /// The startup handshake: SHARDINFO every shard (with patience — shards
  /// may still be booting), verify all reachable shards share one
  /// BbsConfig, and build the Bloofi tree. Fails when no shard is
  /// reachable or configs diverge; shards that stay unreachable enter
  /// service marked down with an all-ones (never-pruned) signature.
  Status Init();

  obs::JsonValue Handle(const obs::JsonValue& request) {
    return Handle(request, service::RequestContext{});
  }
  obs::JsonValue Handle(const obs::JsonValue& request,
                        const service::RequestContext& ctx) override;

  service::ServiceMetrics& metrics() override { return metrics_; }
  const service::ServiceMetrics& metrics() const { return metrics_; }

  void AttachConnectionCounter(
      const std::atomic<uint64_t>* counter) override {
    live_connections_.store(counter, std::memory_order_release);
  }

  /// The schema-v1 report (STATS payload / shutdown artifact), kind
  /// "bbsrouter_service", cluster section populated.
  obs::JsonValue BuildStatsReport() const;

  /// Stops accepting work: every verb but PING/STATS answers Unavailable.
  void Drain() { draining_.store(true, std::memory_order_relaxed); }

  size_t num_shards() const { return shards_.size(); }
  uint64_t shards_up() const;
  /// Total promotions driven by this router (the cluster.failovers
  /// counter).
  uint64_t failovers() const;
  /// The endpoint shard `idx` currently routes to (primary, or the
  /// replica after a failover).
  ShardEndpoint active_endpoint(size_t idx) const;
  /// Cluster-wide transaction total (cached from the latest responses).
  uint64_t TotalTransactions() const;
  const BbsConfig& shard_config() const { return config_; }

 private:
  /// One downstream exchange outcome.
  struct ShardReply {
    bool has_response = false;
    obs::JsonValue response;
    Status status = Status::Ok();
  };

  struct ShardState {
    ShardEntry entry;
    /// True once the replica has been promoted: the shard's active
    /// endpoint is entry.replica until an operator repairs the map.
    std::atomic<bool> on_replica{false};
    /// The shard's fencing term (max term any PROMOTE or SHARDINFO
    /// reported). An endpoint answering with a smaller term is a stale
    /// demoted primary and is never marked up.
    std::atomic<uint64_t> term{0};
    /// Serializes promotion attempts; try_lock so concurrent failed legs
    /// do not stampede PROMOTE.
    std::mutex failover_mu;
    std::mutex pool_mu;
    std::vector<service::ClientSession> idle;  // guarded by pool_mu
    /// Bumped (under pool_mu) when the active endpoint changes; sessions
    /// checked out under an older generation are dropped instead of
    /// returned, so a pooled socket to a demoted primary can never serve
    /// a post-failover request. The fence only holds because checkout
    /// resolves the endpoint and reads the generation under the same
    /// pool_mu hold, and TryFailover flips on_replica inside the hold
    /// that bumps the generation — endpoint and generation move
    /// atomically with respect to each other.
    uint64_t pool_gen = 0;  // guarded by pool_mu
    /// Consecutive background-probe failures (drives the prober backoff).
    std::atomic<uint32_t> probe_failures{0};
    std::atomic<bool> up{false};
    std::atomic<uint64_t> transactions{0};
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> pruned{0};
    std::atomic<uint64_t> hedged{0};
    /// Bumped (under tree_mu_) every time an INSERT ORs new positions
    /// into this shard's Bloofi leaf. RefreshShard samples it before
    /// fetching SHARDINFO: if it moved by apply time, an acked INSERT
    /// raced the fetch and the snapshot may predate that insert's bits,
    /// so the leaf is ORed instead of replaced (bits are never cleared).
    std::atomic<uint64_t> leaf_version{0};
    // Per-shard downstream latency, log2 µs buckets; slot 0 = overflow
    // (the ServiceMetrics histogram layout).
    std::array<std::atomic<uint64_t>,
               obs::DepthHistogram::kMaxTrackedDepth + 1>
        latency{};
  };

  obs::JsonValue HandlePing();
  obs::JsonValue HandleCount(const obs::JsonValue& request);
  obs::JsonValue HandleInsert(const obs::JsonValue& request);
  obs::JsonValue HandleMine(const obs::JsonValue& request);

  /// One full two-round candidate exchange at `min_support`, truncated to
  /// `top`. Sets *consistent to false when a round-2 shard's transaction
  /// total moved between the rounds (concurrent INSERTs) — HandleMine
  /// then re-runs the exchange, bounded by mine_snapshot_retries;
  /// `attempt` is echoed as exchange.snapshot_retries.
  obs::JsonValue MineExchange(double min_support, size_t top,
                              uint32_t attempt, bool* consistent);
  obs::JsonValue HandleStats();
  obs::JsonValue HandleCheckpoint();
  obs::JsonValue HandleShardInfo();

  /// One leg: check a session out of shard `idx`'s pool, exchange
  /// `request` under the fan-out deadline with backpressure retries and
  /// (for idempotent verbs) hedging, update health/latency bookkeeping.
  ShardReply CallShard(size_t idx, const obs::JsonValue& request);

  /// Runs CallShard for every index in `targets` in parallel; results land
  /// at their shard index in the returned vector (non-targets stay
  /// empty-handed with has_response == false).
  std::vector<ShardReply> FanOut(const std::vector<size_t>& targets,
                                 const obs::JsonValue& request);

  /// The sorted union of the query items' hash positions (guards the
  /// non-thread-safe BloomHashFamily cache).
  std::vector<uint32_t> QueryPositions(const Itemset& items);

  /// Bloofi-matched shard indices for the query (everything when pruning
  /// is off); records pruned-shard counters.
  std::vector<size_t> MatchShards(const std::vector<uint32_t>& positions);

  /// Promotes shard `idx`'s replica after its primary went dark. First
  /// confirm-probes the primary and aborts (marking the shard back up)
  /// if it answers at a current term — promotion fences the primary
  /// permanently, so it must never race a primary that is merely slow.
  /// Then probes the replica (SHARDINFO: config identity + term sanity),
  /// issues PROMOTE at term + 1, swaps the active endpoint, clears the
  /// pool, rebuilds the Bloofi leaf from the replica's signature, and
  /// marks the shard up. Returns true when the shard ends the call
  /// promoted and up (including when another thread won the race). No-op
  /// for shards without a replica or already failed over.
  bool TryFailover(size_t idx);

  /// The background prober: wakes every probe_interval_ms and SHARDINFO-
  /// probes every shard — up shards as cheap health checks (so a traffic-
  /// less primary death still fails over), down shards with jittered
  /// exponential backoff per shard. Fences stale terms, marks recovered
  /// shards up (leaf refresh included), and drives failover when a
  /// primary stays dark with a warm replica standing by.
  void ProbeLoop();

  /// One background probe of shard `idx`'s active endpoint. A failed
  /// probe marks the shard down (a replica-less dead shard must not
  /// stay "up" in STATS just because no client traffic hit it) and
  /// drives promotion — immediately on a transport-level failure, after
  /// failover_probe_failures consecutive failures on mere silence.
  /// Returns true when the shard came back up.
  bool ProbeShard(size_t idx);

  /// Re-pulls SHARDINFO from shard `idx` and refreshes its Bloofi leaf —
  /// run when a shard transitions down -> up (its content may have moved
  /// while we could not see it). The leaf is fully replaced only when no
  /// INSERT updated it while the fetch was in flight (leaf_version
  /// check); otherwise the fetched signature is ORed in, so a snapshot
  /// that predates a concurrently acked INSERT can never clear that
  /// insert's bits.
  void RefreshShard(size_t idx);

  void NoteShardSuccess(size_t idx, const obs::JsonValue& response,
                        const std::string& verb);

  /// The endpoint shard routing currently targets (primary, or the
  /// replica once failed over).
  ShardEndpoint ActiveEndpoint(const ShardState& shard) const {
    return shard.on_replica.load(std::memory_order_acquire)
               ? shard.entry.replica
               : shard.entry.primary;
  }

  /// Appends degraded/cluster trailer fields shared by COUNT and MINE.
  void FinishClusterResponse(obs::JsonValue* response, size_t queried,
                             size_t pruned,
                             const std::vector<size_t>& missing);

  ShardMap map_;
  RouterOptions options_;
  service::ServiceMetrics metrics_;
  std::vector<std::unique_ptr<ShardState>> shards_;

  BbsConfig config_;
  bool mine_enabled_ = false;
  std::unique_ptr<BloomHashFamily> hash_;
  mutable std::mutex hash_mu_;

  BloofiTree tree_;
  mutable std::shared_mutex tree_mu_;

  std::atomic<bool> draining_{false};
  std::atomic<const std::atomic<uint64_t>*> live_connections_{nullptr};
  std::chrono::steady_clock::time_point start_;

  // The background prober (started by Init when probe_interval_ms > 0).
  std::thread prober_;
  std::atomic<bool> prober_stop_{false};
  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
};

}  // namespace bbsmine::cluster

#endif  // BBSMINE_CLUSTER_ROUTER_H_
