// Deterministic result merging for the sharded cluster.
//
// COUNT merges trivially: the BBS count of an itemset is a per-transaction
// predicate popcount, so it is exactly additive across ANY partition of
// the transactions — sum the per-shard counts in shard order and the total
// is bit-identical to a single node holding the concatenated database
// (same BbsConfig assumed; the router enforces config identity at
// startup).
//
// MINE needs the two-round global-τ candidate exchange:
//
//   Round 1 — every shard mines locally at the SAME relative minsup. With
//   τ_i = ceil(minsup · n_i) per shard and τ = ceil(minsup · Σn_i)
//   globally, any pattern with global support >= τ must reach relative
//   support >= minsup on at least one shard (weighted pigeonhole:
//   Σ support_i >= minsup · Σ n_i forces support_i >= minsup · n_i for
//   some i, and integer support then clears the local ceil). So the union
//   of round-1 result sets is a complete global candidate set.
//
//   Round 2 — each shard exactly counts the candidates it did NOT itself
//   report (its round-1 supports are already exact). Summing round-1 and
//   round-2 supports per candidate gives exact global supports; filtering
//   at τ and sorting (support desc, items asc — the daemon's own order)
//   reproduces the single-node oracle's answer bit for bit.
//
// These helpers are pure functions over parsed shard results so the
// determinism contract is testable without sockets.

#ifndef BBSMINE_CLUSTER_MERGE_H_
#define BBSMINE_CLUSTER_MERGE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/mining_types.h"
#include "storage/transaction.h"

namespace bbsmine::cluster {

/// One shard's round-1 mining answer.
struct ShardMineResult {
  bool reachable = false;
  uint64_t transactions = 0;
  /// Locally frequent itemsets with exact local supports, keyed by
  /// canonical itemset (the map keeps candidates in ascending order).
  std::map<Itemset, uint64_t> supports;
};

/// The union candidate set across every reachable shard, ascending.
std::vector<Itemset> UnionCandidates(const std::vector<ShardMineResult>& round1);

/// The candidates `shard` must exact-count in round 2: those it did not
/// report in round 1 (for unreachable shards this is moot — they get no
/// round 2).
std::vector<Itemset> MissingCandidates(const ShardMineResult& shard,
                                       const std::vector<Itemset>& candidates);

/// Sums round-1 + round-2 supports per candidate over reachable shards,
/// keeps those with global support >= `tau`, and sorts by (support desc,
/// items asc) — the daemon's MINE order. `round2[i]` holds shard i's
/// exact counts for its missing candidates (empty when none were needed).
std::vector<Pattern> MergeGlobalPatterns(
    const std::vector<ShardMineResult>& round1,
    const std::vector<std::map<Itemset, uint64_t>>& round2,
    const std::vector<Itemset>& candidates, uint64_t tau);

}  // namespace bbsmine::cluster

#endif  // BBSMINE_CLUSTER_MERGE_H_
