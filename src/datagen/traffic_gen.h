// Open-loop service traffic generator for the bbsmined load harness.
//
// Produces a deterministic request stream — verb, item payload, and an
// *arrival-process-scheduled* send time for every request — ahead of any
// network activity. Scheduling every send time up front is what makes the
// harness coordinated-omission-safe: latency is measured from the time the
// arrival process says the request should have been sent, not from
// whenever the previous response happened to free the connection, so a
// slow server inflates the recorded latencies instead of silently thinning
// the offered load.
//
// Item skew follows a Zipf distribution over a ranked item universe (the
// classic shape of query popularity); arrivals are Poisson (open-loop
// steady state) or bursty on/off (the same mean rate compressed into
// on-windows, for tail-latency stress). Everything is driven by one
// xoshiro256** stream, so a (spec, seed) pair names one exact request
// stream, reproducible across runs and machines.

#ifndef BBSMINE_DATAGEN_TRAFFIC_GEN_H_
#define BBSMINE_DATAGEN_TRAFFIC_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/transaction.h"
#include "util/rng.h"
#include "util/status.h"

namespace bbsmine {

/// Service verbs the harness exercises (CHECKPOINT is excluded: it is an
/// operator action, not traffic).
enum class TrafficVerb : uint8_t { kPing, kCount, kInsert, kMine, kStats };

/// Wire-protocol verb string ("PING", "COUNT", ...).
const char* TrafficVerbName(TrafficVerb verb);

/// Relative verb weights (any non-negative values; normalized internally).
struct TrafficMix {
  double ping = 0.0;
  double count = 0.70;
  double insert = 0.20;
  double mine = 0.05;
  double stats = 0.05;
};

enum class ArrivalProcess : uint8_t {
  kPoisson,  ///< exponential inter-arrivals at the mean rate
  kBursty,   ///< on/off: the same mean rate compressed into on-windows
};

/// Full specification of a traffic stream. A (spec, seed) pair is a name
/// for one exact request sequence.
struct TrafficSpec {
  uint64_t seed = 42;
  double rate_rps = 100.0;  ///< mean offered load, requests/second
  double duration_s = 10.0;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Bursty shape: arrivals are generated at rate_rps * (on+off)/on during
  /// on-windows and fast-forwarded past off-windows, preserving the mean.
  double burst_on_ms = 200.0;
  double burst_off_ms = 800.0;
  TrafficMix mix;
  uint32_t item_universe = 1000;  ///< items 0..universe-1, rank-ordered
  double zipf_s = 0.99;           ///< Zipf exponent; 0 = uniform
  uint32_t query_len = 2;         ///< items per COUNT query
  double insert_len_mean = 10.0;  ///< Poisson mean INSERT transaction size
  double mine_minsup = 0.1;       ///< relative support for MINE requests
  uint32_t mine_top = 10;         ///< top-k cap for MINE requests
};

/// One scheduled request. `items` is the COUNT query or the INSERT
/// transaction (sorted, deduplicated); empty for PING/MINE/STATS.
struct TrafficRequest {
  uint64_t scheduled_us = 0;  ///< send time, µs from stream start
  TrafficVerb verb = TrafficVerb::kCount;
  Itemset items;
};

/// Zipf(s) sampler over ranks 0..n-1 via a precomputed CDF and binary
/// search — O(n) setup, O(log n) per sample, exact for any s >= 0 (s = 0
/// degenerates to uniform).
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double s);
  uint32_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Generates the full request stream for `spec`, sorted by scheduled_us.
/// Fails on degenerate parameters (non-positive rate/duration, empty item
/// universe, zero-length queries, all-zero mix, non-positive burst
/// windows for bursty arrivals).
Result<std::vector<TrafficRequest>> GenerateTraffic(const TrafficSpec& spec);

}  // namespace bbsmine

#endif  // BBSMINE_DATAGEN_TRAFFIC_GEN_H_
