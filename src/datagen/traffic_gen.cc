#include "datagen/traffic_gen.h"

#include <algorithm>
#include <cmath>

namespace bbsmine {

namespace {

/// Draws `len` distinct items (Zipf-ranked) and returns them sorted.
/// Rejection on duplicates; `len` is clamped to the universe size so the
/// loop always terminates.
Itemset DrawDistinctItems(const ZipfSampler& zipf, uint32_t universe,
                          uint32_t len, Rng& rng) {
  len = std::min(len, universe);
  Itemset items;
  items.reserve(len);
  while (items.size() < len) {
    ItemId candidate = zipf.Sample(rng);
    if (std::find(items.begin(), items.end(), candidate) == items.end()) {
      items.push_back(candidate);
    }
  }
  std::sort(items.begin(), items.end());
  return items;
}

}  // namespace

const char* TrafficVerbName(TrafficVerb verb) {
  switch (verb) {
    case TrafficVerb::kPing:
      return "PING";
    case TrafficVerb::kCount:
      return "COUNT";
    case TrafficVerb::kInsert:
      return "INSERT";
    case TrafficVerb::kMine:
      return "MINE";
    case TrafficVerb::kStats:
      return "STATS";
  }
  return "UNKNOWN";
}

ZipfSampler::ZipfSampler(uint32_t n, double s) {
  cdf_.reserve(n);
  double cum = 0.0;
  for (uint32_t rank = 0; rank < n; ++rank) {
    cum += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_.push_back(cum);
  }
  for (double& c : cdf_) c /= cum;  // normalize to a proper CDF
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;  // u landed on/above the final 1.0
  return static_cast<uint32_t>(it - cdf_.begin());
}

Result<std::vector<TrafficRequest>> GenerateTraffic(const TrafficSpec& spec) {
  if (spec.rate_rps <= 0 || spec.duration_s <= 0) {
    return Status::InvalidArgument(
        "traffic rate and duration must be positive");
  }
  if (spec.item_universe == 0) {
    return Status::InvalidArgument("item universe must be non-empty");
  }
  if (spec.query_len == 0) {
    return Status::InvalidArgument("query length must be >= 1");
  }
  if (spec.zipf_s < 0) {
    return Status::InvalidArgument("zipf exponent must be >= 0");
  }
  if (spec.insert_len_mean < 1) {
    return Status::InvalidArgument("insert length mean must be >= 1");
  }
  const double mix_total = spec.mix.ping + spec.mix.count + spec.mix.insert +
                           spec.mix.mine + spec.mix.stats;
  if (!(mix_total > 0) || spec.mix.ping < 0 || spec.mix.count < 0 ||
      spec.mix.insert < 0 || spec.mix.mine < 0 || spec.mix.stats < 0) {
    return Status::InvalidArgument(
        "verb mix must be non-negative with a positive total");
  }
  if (spec.arrival == ArrivalProcess::kBursty &&
      (spec.burst_on_ms <= 0 || spec.burst_off_ms < 0)) {
    return Status::InvalidArgument(
        "bursty arrivals need burst_on_ms > 0 and burst_off_ms >= 0");
  }

  // Verb CDF in enum order.
  const double verb_cdf[5] = {
      spec.mix.ping / mix_total,
      (spec.mix.ping + spec.mix.count) / mix_total,
      (spec.mix.ping + spec.mix.count + spec.mix.insert) / mix_total,
      (spec.mix.ping + spec.mix.count + spec.mix.insert + spec.mix.mine) /
          mix_total,
      1.0,
  };

  // During on-windows the bursty process runs hot enough that the
  // off-windows average back out to the requested mean rate.
  const double cycle_ms = spec.burst_on_ms + spec.burst_off_ms;
  const double gen_rate =
      spec.arrival == ArrivalProcess::kBursty
          ? spec.rate_rps * cycle_ms / spec.burst_on_ms
          : spec.rate_rps;
  const double mean_gap_us = 1e6 / gen_rate;
  const uint64_t duration_us =
      static_cast<uint64_t>(spec.duration_s * 1e6);
  const uint64_t on_us = static_cast<uint64_t>(spec.burst_on_ms * 1e3);
  const uint64_t cycle_us = static_cast<uint64_t>(cycle_ms * 1e3);

  Rng rng(spec.seed);
  ZipfSampler zipf(spec.item_universe, spec.zipf_s);
  std::vector<TrafficRequest> stream;
  stream.reserve(static_cast<size_t>(spec.rate_rps * spec.duration_s * 1.1));

  double clock_us = 0.0;
  for (;;) {
    clock_us += rng.Exponential(mean_gap_us);
    uint64_t t = static_cast<uint64_t>(clock_us);
    if (spec.arrival == ArrivalProcess::kBursty && cycle_us > 0) {
      // Arrivals falling in an off-window are fast-forwarded to the start
      // of the next on-window (the burst front-loads the cycle).
      uint64_t pos = t % cycle_us;
      if (pos >= on_us) {
        t += cycle_us - pos;
        clock_us = static_cast<double>(t);
      }
    }
    if (t >= duration_us) break;

    TrafficRequest request;
    request.scheduled_us = t;
    double u = rng.NextDouble();
    if (u < verb_cdf[0]) {
      request.verb = TrafficVerb::kPing;
    } else if (u < verb_cdf[1]) {
      request.verb = TrafficVerb::kCount;
      request.items =
          DrawDistinctItems(zipf, spec.item_universe, spec.query_len, rng);
    } else if (u < verb_cdf[2]) {
      request.verb = TrafficVerb::kInsert;
      uint32_t len = static_cast<uint32_t>(
          std::max<uint64_t>(1, rng.Poisson(spec.insert_len_mean)));
      request.items = DrawDistinctItems(zipf, spec.item_universe, len, rng);
    } else if (u < verb_cdf[3]) {
      request.verb = TrafficVerb::kMine;
    } else {
      request.verb = TrafficVerb::kStats;
    }
    stream.push_back(std::move(request));
  }
  return stream;
}

}  // namespace bbsmine
