#include "datagen/weblog_gen.h"

#include <algorithm>

namespace bbsmine {

Result<WebLogGenerator> WebLogGenerator::Create(const WebLogConfig& config) {
  if (config.num_files == 0) {
    return Status::InvalidArgument("num_files must be positive");
  }
  if (config.hot_fraction <= 0 || config.hot_fraction > 1) {
    return Status::InvalidArgument("hot_fraction must be in (0, 1]");
  }
  if (static_cast<uint32_t>(config.hot_fraction *
                            static_cast<double>(config.num_files)) == 0) {
    return Status::InvalidArgument("hot set would be empty");
  }
  if (config.avg_session_size < 1) {
    return Status::InvalidArgument("avg_session_size must be at least 1");
  }
  return WebLogGenerator(config);
}

WebLogGenerator::WebLogGenerator(const WebLogConfig& config)
    : config_(config), rng_(config.seed) {
  uint32_t hot_count = static_cast<uint32_t>(
      config_.hot_fraction * static_cast<double>(config_.num_files));
  // Shuffle the file ids and split into hot / cold.
  std::vector<ItemId> files(config_.num_files);
  for (uint32_t f = 0; f < config_.num_files; ++f) files[f] = f;
  for (size_t i = files.size(); i > 1; --i) {
    std::swap(files[i - 1], files[rng_.Uniform(i)]);
  }
  hot_.assign(files.begin(), files.begin() + hot_count);
  cold_.assign(files.begin() + hot_count, files.end());

  // Persistent bundles over the hot set (pages plus their linked
  // resources). Bundles survive churn: a retired file simply stops being
  // drawn via the hot path but keeps its bundle slot, mirroring stale links.
  bundles_.resize(config_.num_bundles);
  for (Itemset& bundle : bundles_) {
    size_t size =
        std::max<uint64_t>(2, rng_.Poisson(config_.avg_bundle_size));
    for (size_t s = 0; s < size; ++s) {
      bundle.push_back(hot_[rng_.Uniform(hot_.size())]);
    }
    Canonicalize(&bundle);
  }
}

void WebLogGenerator::GenerateDay(TransactionDatabase* db) {
  Itemset session;
  for (uint32_t t = 0; t < config_.transactions_per_day; ++t) {
    size_t size =
        std::max<uint64_t>(1, rng_.Poisson(config_.avg_session_size));
    session.clear();
    while (session.size() < size) {
      if (!bundles_.empty() && rng_.NextDouble() < config_.bundle_prob) {
        const Itemset& bundle = bundles_[rng_.Uniform(bundles_.size())];
        session.insert(session.end(), bundle.begin(), bundle.end());
      } else if (rng_.NextDouble() < config_.hot_access_mass ||
                 cold_.empty()) {
        session.push_back(hot_[rng_.Uniform(hot_.size())]);
      } else {
        session.push_back(cold_[rng_.Uniform(cold_.size())]);
      }
    }
    Canonicalize(&session);
    db->Append(session);
  }
  ++day_;
  Churn();
}

void WebLogGenerator::Churn() {
  size_t retire = static_cast<size_t>(config_.daily_churn *
                                      static_cast<double>(hot_.size()));
  for (size_t r = 0; r < retire && !cold_.empty(); ++r) {
    size_t hot_victim = rng_.Uniform(hot_.size());
    size_t cold_pick = rng_.Uniform(cold_.size());
    std::swap(hot_[hot_victim], cold_[cold_pick]);
  }
}

Itemset WebLogGenerator::hot_files() const {
  Itemset sorted = hot_;
  Canonicalize(&sorted);
  return sorted;
}

}  // namespace bbsmine
