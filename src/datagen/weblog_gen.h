// Dynamic web-server-log workload generator (paper Section 4.8).
//
// The paper's dynamic experiment uses the web-server transaction database of
// [10]: "there are 5000 files on the dynamic Web server, where 10% of the
// 'hot' files in the previous day will be 'cold' the next day", with daily
// batches of new transactions appended to the database. That trace is not
// public, so this generator synthesizes the described workload: a hot set of
// files receives most of the accesses, sessions (transactions) draw their
// files mostly from the hot set, and every simulated day a fraction of the
// hot set churns to cold.

#ifndef BBSMINE_DATAGEN_WEBLOG_GEN_H_
#define BBSMINE_DATAGEN_WEBLOG_GEN_H_

#include <cstdint>
#include <vector>

#include "storage/transaction_db.h"
#include "util/rng.h"
#include "util/status.h"

namespace bbsmine {

/// Parameters of the synthetic web-log workload.
struct WebLogConfig {
  uint32_t num_files = 5'000;            ///< item universe (files)
  double hot_fraction = 0.10;            ///< share of files that are hot
  double hot_access_mass = 0.90;         ///< share of accesses hitting hot files
  double daily_churn = 0.10;             ///< hot files replaced per day
  double avg_session_size = 8.0;         ///< files per transaction (session)
  uint32_t transactions_per_day = 10'000;
  uint64_t seed = 7;

  /// Pages with linked resources: persistent bundles of hot files that are
  /// fetched together. Each session draws whole bundles with probability
  /// `bundle_prob` per slot (and single files otherwise), which creates the
  /// co-access patterns a real server log exhibits. 0 bundles disables.
  uint32_t num_bundles = 120;
  double avg_bundle_size = 3.0;
  double bundle_prob = 0.5;
};

/// Stateful day-by-day generator; each GenerateDay appends one day's
/// transactions to `db` and then churns the hot set.
class WebLogGenerator {
 public:
  /// Validates `config`. Fails on a zero universe or an empty hot set.
  static Result<WebLogGenerator> Create(const WebLogConfig& config);

  /// Appends one day of sessions to `db`, then retires `daily_churn` of the
  /// hot set and promotes random cold files in their place.
  void GenerateDay(TransactionDatabase* db);

  /// The current hot set (sorted), for inspection in tests.
  Itemset hot_files() const;

  uint32_t day() const { return day_; }

 private:
  explicit WebLogGenerator(const WebLogConfig& config);

  void Churn();

  WebLogConfig config_;
  Rng rng_;
  std::vector<ItemId> hot_;        // current hot files
  std::vector<ItemId> cold_;       // everything else
  std::vector<Itemset> bundles_;   // co-accessed file groups
  uint32_t day_ = 0;
};

}  // namespace bbsmine

#endif  // BBSMINE_DATAGEN_WEBLOG_GEN_H_
