// Synthetic transaction generator following the IBM Quest procedure of
// Agrawal & Srikant (VLDB'94, Section 2.4.3) — the dataset generator the
// paper uses for its entire evaluation ("the synthetic data sets which we
// used for our experiments were generated using the procedure described in
// [1]").
//
// The generator first draws a pool of "potentially large" itemsets with
// correlated contents, an exponential weight and a per-itemset corruption
// level; each transaction then packs (possibly corrupted) potentially-large
// itemsets until it reaches its drawn size. The paper's notation
// Txx.Iyy.Dzz maps to avg_transaction_size=xx, avg_pattern_size=yy,
// num_transactions=zz.

#ifndef BBSMINE_DATAGEN_QUEST_GEN_H_
#define BBSMINE_DATAGEN_QUEST_GEN_H_

#include <cstdint>

#include "storage/transaction_db.h"
#include "util/status.h"

namespace bbsmine {

/// Parameters of a Quest-style dataset (defaults = the paper's defaults:
/// T10.I10.D10K with 10K items).
struct QuestConfig {
  uint32_t num_transactions = 10'000;    ///< D
  uint32_t num_items = 10'000;           ///< V (item universe)
  double avg_transaction_size = 10.0;    ///< T
  double avg_pattern_size = 10.0;        ///< I
  uint32_t num_patterns = 2'000;         ///< |L|, the potentially-large pool
  double correlation = 0.5;              ///< fraction of items reused from the previous pattern
  double corruption_mean = 0.5;          ///< per-pattern corruption level ~ N(mean, sd)
  double corruption_sd = 0.1;
  uint64_t seed = 42;                    ///< deterministic generation
};

/// Generates a database per `config`. Fails on degenerate parameters
/// (zero items/transactions, mean sizes below 1, no patterns).
Result<TransactionDatabase> GenerateQuest(const QuestConfig& config);

}  // namespace bbsmine

#endif  // BBSMINE_DATAGEN_QUEST_GEN_H_
