#include "datagen/quest_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace bbsmine {

namespace {

/// One potentially-large itemset with its selection weight and corruption
/// level.
struct PatternSpec {
  Itemset items;
  double weight = 0;
  double corruption = 0;
};

/// Draws the pool of potentially-large itemsets.
std::vector<PatternSpec> DrawPatterns(const QuestConfig& config, Rng* rng) {
  std::vector<PatternSpec> patterns(config.num_patterns);
  double weight_sum = 0;

  for (size_t p = 0; p < patterns.size(); ++p) {
    PatternSpec& spec = patterns[p];

    // Size ~ Poisson with the configured mean, at least 1.
    size_t size = std::max<uint64_t>(1, rng->Poisson(config.avg_pattern_size));
    size = std::min<size_t>(size, config.num_items);

    // A fraction of items (exponentially distributed around `correlation`)
    // is reused from the previous pattern; the rest are fresh uniform picks.
    spec.items.clear();
    if (p > 0 && !patterns[p - 1].items.empty()) {
      double frac = std::min(1.0, rng->Exponential(config.correlation));
      size_t reuse = static_cast<size_t>(
          frac * static_cast<double>(std::min(size, patterns[p - 1].items.size())));
      const Itemset& prev = patterns[p - 1].items;
      for (size_t r = 0; r < reuse; ++r) {
        spec.items.push_back(prev[rng->Uniform(prev.size())]);
      }
    }
    while (spec.items.size() < size) {
      spec.items.push_back(
          static_cast<ItemId>(rng->Uniform(config.num_items)));
    }
    Canonicalize(&spec.items);

    spec.weight = rng->Exponential(1.0);
    weight_sum += spec.weight;

    double corruption =
        rng->Normal(config.corruption_mean, config.corruption_sd);
    spec.corruption = std::clamp(corruption, 0.0, 1.0);
  }

  // Normalize weights to a cumulative distribution for roulette selection.
  double cumulative = 0;
  for (PatternSpec& spec : patterns) {
    cumulative += spec.weight / weight_sum;
    spec.weight = cumulative;
  }
  if (!patterns.empty()) patterns.back().weight = 1.0;
  return patterns;
}

/// Picks a pattern index by roulette over the cumulative weights.
size_t PickPattern(const std::vector<PatternSpec>& patterns, Rng* rng) {
  double u = rng->NextDouble();
  auto it = std::lower_bound(
      patterns.begin(), patterns.end(), u,
      [](const PatternSpec& spec, double key) { return spec.weight < key; });
  if (it == patterns.end()) --it;
  return static_cast<size_t>(it - patterns.begin());
}

}  // namespace

Result<TransactionDatabase> GenerateQuest(const QuestConfig& config) {
  if (config.num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be positive");
  }
  if (config.num_items == 0) {
    return Status::InvalidArgument("num_items must be positive");
  }
  if (config.num_patterns == 0) {
    return Status::InvalidArgument("num_patterns must be positive");
  }
  if (config.avg_transaction_size < 1 || config.avg_pattern_size < 1) {
    return Status::InvalidArgument("average sizes must be at least 1");
  }

  Rng rng(config.seed);
  std::vector<PatternSpec> patterns = DrawPatterns(config, &rng);

  TransactionDatabase db;
  Itemset txn;
  Itemset corrupted;
  for (uint32_t t = 0; t < config.num_transactions; ++t) {
    size_t target =
        std::max<uint64_t>(1, rng.Poisson(config.avg_transaction_size));
    txn.clear();

    while (txn.size() < target) {
      const PatternSpec& spec = patterns[PickPattern(patterns, &rng)];

      // Corruption: drop items from the pattern while a uniform draw stays
      // below the pattern's corruption level (Agrawal-Srikant's scheme keeps
      // partial patterns in the data).
      corrupted = spec.items;
      while (!corrupted.empty() && rng.NextDouble() < spec.corruption) {
        size_t victim = rng.Uniform(corrupted.size());
        corrupted.erase(corrupted.begin() + static_cast<ptrdiff_t>(victim));
      }
      if (corrupted.empty()) continue;

      // If the (corrupted) pattern overflows the transaction, keep it anyway
      // half the time and discard it otherwise, per the original procedure.
      if (txn.size() + corrupted.size() > target && !txn.empty()) {
        if (rng.NextDouble() < 0.5) {
          txn.insert(txn.end(), corrupted.begin(), corrupted.end());
        }
        break;
      }
      txn.insert(txn.end(), corrupted.begin(), corrupted.end());
    }

    Canonicalize(&txn);
    db.Append(txn);
  }
  return db;
}

}  // namespace bbsmine
