#!/usr/bin/env bash
# Crash-torture harness for bbsmined durability (run by the CI
# crash-recovery job, and runnable locally):
#
#   repeat N times:
#     1. start bbsmined with --durable-dir on an ephemeral port;
#     2. fire a sequential INSERT burst, recording each itemset to an
#        "acked" oracle log only after the client saw the OK response;
#     3. kill -9 the daemon mid-burst;
#     4. restart, and reconcile: the recovered transaction count must be
#        exactly the acked count, or acked+1 (one insert can be in the WAL
#        with its response lost to the kill — that itemset is appended to
#        the oracle log);
#     5. rebuild an offline index from the oracle log and diff a query mix
#        count-for-count against the daemon (must be bit-identical);
#     6. on even cycles, issue an explicit CHECKPOINT so recovery
#        alternates between checkpoint+WAL-suffix and WAL-heavy replay.
#
#   then the torn-tail leg: with the daemon down, append a partial WAL
#   frame (a header claiming more payload than is present — what a torn
#   append looks like), restart, and require recovery to truncate and
#   report the torn bytes without losing any acknowledged insert. Finish
#   with a graceful SIGTERM drain.
#
# Usage: scripts/crash_torture.sh [BUILD_DIR] [CYCLES]   (default: build, 5)

set -euo pipefail

BUILD_DIR="${1:-build}"
CYCLES="${2:-5}"
BBSMINE="$BUILD_DIR/tools/bbsmine"
BBSMINED="$BUILD_DIR/tools/bbsmined"
WORK="$(mktemp -d)"
DUR="$WORK/durable"
ACKED="$WORK/acked.fimi"
DAEMON_PID=""
PORT=""

# Matches the daemon's empty-index defaults below; the offline oracle must
# build with the identical config or the diff is meaningless.
BITS=800
HASHES=3
SEGCAP=64

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

: > "$ACKED"

# The global insert sequence: itemset #n is a deterministic function of n,
# so "the first R transactions" is always reconstructible.
itemset_for() {
  local n=$1
  echo "$((n % 40)),$((40 + (n * 7) % 40)),$((80 + (n * 3) % 40))"
}

start_daemon() {
  local log=$1
  "$BBSMINED" --durable-dir "$DUR" --bits "$BITS" --hashes "$HASHES" \
    --segment-capacity "$SEGCAP" --fsync always --checkpoint-every 16 \
    --port 0 > "$log" 2>&1 &
  DAEMON_PID=$!
  PORT=""
  for _ in $(seq 1 50); do
    PORT=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [[ -n "$PORT" ]] && break
    kill -0 "$DAEMON_PID" || { cat "$log"; exit 1; }
    sleep 0.2
  done
  [[ -n "$PORT" ]] || { echo "daemon never reported its port"; cat "$log"; exit 1; }
}

daemon_transactions() {
  "$BBSMINE" client --port "$PORT" --verb STATS --json | python3 -c \
    "import json,sys;r=json.load(sys.stdin);assert r['ok'],r;\
print(r['report']['service']['transactions'])"
}

oracle_rebuild() {
  tr ',' ' ' < "$ACKED" > "$WORK/oracle.fimi"
  "$BBSMINE" convert --in "$WORK/oracle.fimi" --out "$WORK/oracle.db" \
    >/dev/null
  "$BBSMINE" build --db "$WORK/oracle.db" --out "$WORK/oracle.seg" \
    --bits "$BITS" --hashes "$HASHES" --segment-capacity "$SEGCAP" >/dev/null
}

QUERIES=(5 45 85 "5,45" "13,53" "0,40,80" 39 "7,49,101")

verify_against_oracle() {
  oracle_rebuild
  for q in "${QUERIES[@]}"; do
    daemon_count=$("$BBSMINE" client --port "$PORT" --verb COUNT \
      --items "$q" --json | python3 -c \
      "import json,sys;r=json.load(sys.stdin);assert r['ok'],r;print(r['count'])")
    oracle_count=$("$BBSMINE" count --index "$WORK/oracle.seg" \
      --items "$q" | sed -n 's/^ *estimate \([0-9][0-9]*\).*/\1/p')
    if [[ "$daemon_count" != "$oracle_count" ]]; then
      echo "MISMATCH on {$q}: daemon=$daemon_count oracle=$oracle_count"
      exit 1
    fi
  done
}

for cycle in $(seq 1 "$CYCLES"); do
  echo "== cycle $cycle/$CYCLES"
  start_daemon "$WORK/daemon.$cycle.log"
  grep -q "bbsmined recovery:" "$WORK/daemon.$cycle.log" || {
    echo "no recovery line"; cat "$WORK/daemon.$cycle.log"; exit 1; }

  # Sequential insert burst: record an itemset only after its OK response.
  (
    n=$(wc -l < "$ACKED")
    while true; do
      items=$(itemset_for "$n")
      "$BBSMINE" client --port "$PORT" --verb INSERT --items "$items" \
        >/dev/null 2>&1 || break
      echo "$items" >> "$ACKED"
      n=$((n + 1))
    done
  ) &
  BURST_PID=$!

  # Vary the kill point cycle to cycle so different WAL/checkpoint phases
  # are hit (the sleep is in whole tenths to stay portable).
  sleep "1.$((cycle % 4))"
  kill -KILL "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
  wait "$BURST_PID" 2>/dev/null || true

  acked=$(wc -l < "$ACKED")
  [[ "$acked" -gt 0 ]] || { echo "burst never landed an insert"; exit 1; }

  start_daemon "$WORK/recovery.$cycle.log"
  grep -q "bbsmined recovery:" "$WORK/recovery.$cycle.log" || {
    echo "no recovery line"; cat "$WORK/recovery.$cycle.log"; exit 1; }
  recovered=$(daemon_transactions)

  # Reconcile the at-most-one in-flight insert whose response the kill ate.
  if [[ "$recovered" -eq $((acked + 1)) ]]; then
    itemset_for "$acked" >> "$ACKED"
    echo "   reconciled one in-flight insert (acked $acked -> $recovered)"
    acked=$recovered
  fi
  if [[ "$recovered" -ne "$acked" ]]; then
    echo "LOST ACKNOWLEDGED DATA: acked=$acked recovered=$recovered"
    cat "$WORK/recovery.$cycle.log"
    exit 1
  fi

  verify_against_oracle
  echo "   $recovered transactions survived kill -9; counts match oracle"

  if (( cycle % 2 == 0 )); then
    "$BBSMINE" client --port "$PORT" --verb CHECKPOINT >/dev/null
    echo "   explicit CHECKPOINT taken"
  fi

  kill -KILL "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
done

echo "== torn-tail leg"
# A torn append: a frame header claiming 9999 payload bytes with only 8
# behind it. Recovery must truncate it, report the bytes, and lose nothing.
python3 - "$DUR/wal" <<'EOF'
import struct, sys
with open(sys.argv[1], 'ab') as f:
    f.write(struct.pack('<II', 9999, 0) + b'\x00' * 4)
EOF

acked=$(wc -l < "$ACKED")
start_daemon "$WORK/torn.log"
torn=$(sed -n 's/.*torn_tail_bytes=\([0-9]*\).*/\1/p' "$WORK/torn.log" | head -1)
[[ -n "$torn" && "$torn" -gt 0 ]] || {
  echo "torn tail was not reported"; cat "$WORK/torn.log"; exit 1; }
recovered=$(daemon_transactions)
[[ "$recovered" -eq "$acked" ]] || {
  echo "torn-tail recovery lost data: acked=$acked recovered=$recovered"
  exit 1
}
verify_against_oracle
echo "   torn tail of $torn bytes truncated; all $recovered transactions intact"

echo "== graceful SIGTERM drain"
kill -TERM "$DAEMON_PID"
EXIT_CODE=0
wait "$DAEMON_PID" || EXIT_CODE=$?
DAEMON_PID=""
[[ "$EXIT_CODE" -eq 0 ]] || {
  echo "daemon exited with $EXIT_CODE"; cat "$WORK/torn.log"; exit 1; }
grep -q "bbsmined checkpointed" "$WORK/torn.log" || {
  echo "no shutdown checkpoint"; cat "$WORK/torn.log"; exit 1; }

echo "crash torture PASSED ($CYCLES kill -9 cycles, $(wc -l < "$ACKED") acked inserts)"
