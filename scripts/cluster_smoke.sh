#!/usr/bin/env bash
# End-to-end smoke test for the bbsrouter sharded cluster (run by the CI
# cluster-smoke job, and runnable locally):
#
#   1. generate a dataset, split it 3 ways with `bbsmine split`, build a
#      per-shard segmented index for each part plus a full index and a
#      single-node oracle daemon over the concatenated data;
#   2. start 3 bbsmined shards and a bbsrouter in front of them;
#   3. diff router COUNT answers against the offline oracle and router
#      MINE output against the oracle daemon — both must be bit-identical;
#   4. INSERT through the router (tail-shard routing) and verify the count
#      and the cluster-wide transaction total move;
#   5. require the Bloofi routing tree to have pruned at least one shard
#      fan-out (absent-item queries cannot cover any shard signature);
#   6. kill one shard with SIGKILL mid-traffic and require degraded-but-
#      answering COUNT/MINE responses carrying the missing-shard list;
#   7. SIGTERM the router and require a clean drain plus a schema-valid
#      bbsrouter service report with a populated cluster section;
#   8. bench leg: run the same fixed-seed bbsbench --target load against
#      fleets of 1, 2 and 4 shards over the same total data and compose
#      the tracked BENCH_cluster.json (schema + per-shard breakdown
#      validated).
#
# Usage: scripts/cluster_smoke.sh [BUILD_DIR] [CLUSTER_JSON]
#   (defaults: build, BENCH_cluster.json in the current directory)

set -euo pipefail

BUILD_DIR="${1:-build}"
CLUSTER_JSON="${2:-BENCH_cluster.json}"
BBSMINE="$BUILD_DIR/tools/bbsmine"
BBSMINED="$BUILD_DIR/tools/bbsmined"
BBSROUTER="$BUILD_DIR/tools/bbsrouter"
BBSBENCH="$BUILD_DIR/tools/bbsbench"
WORK="$(mktemp -d)"

# Every spawned process, tracked by PID saved at spawn time — never matched
# by name (pgrep -f would race other jobs and even this script's own shell).
ALL_PIDS=()

cleanup() {
  for pid in "${ALL_PIDS[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -KILL "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# start_daemon LOG INDEX DB -> sets DPID / DPORT.
start_daemon() {
  local log=$1 index=$2 db=$3
  "$BBSMINED" --index "$index" --db "$db" --port 0 > "$log" 2>&1 &
  DPID=$!
  ALL_PIDS+=("$DPID")
  DPORT=""
  for _ in $(seq 1 50); do
    DPORT=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [[ -n "$DPORT" ]] && break
    kill -0 "$DPID" || { cat "$log"; exit 1; }
    sleep 0.2
  done
  [[ -n "$DPORT" ]] || { echo "daemon never reported its port"; cat "$log"; exit 1; }
}

# start_router LOG SHARDSPEC [extra flags...] -> sets RPID / RPORT.
start_router() {
  local log=$1 spec=$2
  shift 2
  "$BBSROUTER" --shards "$spec" --port 0 "$@" > "$log" 2>&1 &
  RPID=$!
  ALL_PIDS+=("$RPID")
  RPORT=""
  for _ in $(seq 1 50); do
    RPORT=$(sed -n 's/^bbsrouter listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [[ -n "$RPORT" ]] && break
    kill -0 "$RPID" || { cat "$log"; exit 1; }
    sleep 0.2
  done
  [[ -n "$RPORT" ]] || { echo "router never reported its port"; cat "$log"; exit 1; }
}

# split_and_index N PREFIX -> builds PREFIX.<i>.db / PREFIX.<i>.seg and
# sets SHARD_SPEC / SHARD_PIDS / SHARD_PORTS for a running fleet of N.
start_fleet() {
  local n=$1 prefix=$2
  "$BBSMINE" split --db "$WORK/smoke.db" --shards "$n" \
    --out-prefix "$prefix" >/dev/null
  SHARD_SPEC=""
  SHARD_PIDS=()
  SHARD_PORTS=()
  for i in $(seq 0 $((n - 1))); do
    "$BBSMINE" build --db "$prefix.$i.db" --out "$prefix.$i.seg" \
      --bits 800 --hashes 3 --segment-capacity 512 >/dev/null
    start_daemon "$prefix.$i.log" "$prefix.$i.seg" "$prefix.$i.db"
    SHARD_PIDS+=("$DPID")
    SHARD_PORTS+=("$DPORT")
    SHARD_SPEC+="${SHARD_SPEC:+,}127.0.0.1:$DPORT"
  done
}

stop_pid() {
  local pid=$1
  kill -TERM "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
}

json_field() {
  python3 -c "import json,sys;r=json.load(open(sys.argv[1]));print(r$2)" "$1"
}

echo "== generating dataset, full oracle index, 3-way split"
"$BBSMINE" gen --out "$WORK/smoke.db" --txns 3000 --items 200 --t 8 --i 4 \
  --patterns 50 --seed 11 >/dev/null
"$BBSMINE" build --db "$WORK/smoke.db" --out "$WORK/smoke.seg" \
  --bits 800 --hashes 3 --segment-capacity 512 >/dev/null
start_daemon "$WORK/oracle.log" "$WORK/smoke.seg" "$WORK/smoke.db"
ORACLE_PID=$DPID
ORACLE_PORT=$DPORT
start_fleet 3 "$WORK/shard"
echo "   3 shards up (ports ${SHARD_PORTS[*]}), oracle on $ORACLE_PORT"

echo "== starting bbsrouter"
start_router "$WORK/router.log" "$SHARD_SPEC" \
  --report-out "$WORK/router-report.json"
grep -q "(3 shards, 3 up" "$WORK/router.log" || {
  echo "router banner reports a partial fleet"; cat "$WORK/router.log"; exit 1; }
echo "   router on port $RPORT (pid $RPID)"

"$BBSMINE" client --port "$RPORT" --verb PING >/dev/null

# The daemon_smoke query mix: frequent heads of seed 11's distribution,
# pairs, a triple, and absent items (both zero paths and pruning bait).
QUERIES=(161 27 111 "128,161" "111,161" "27,128" "27,111,161" 17 "3,17,42"
         199 "161,199")

echo "== ${#QUERIES[@]} router COUNT answers vs offline oracle"
for i in "${!QUERIES[@]}"; do
  router_count=$("$BBSMINE" client --port "$RPORT" --verb COUNT \
    --items "${QUERIES[$i]}" --json | python3 -c \
    "import json,sys;r=json.load(sys.stdin);assert r['ok'],r;\
assert not r['degraded'],r;print(r['count'])")
  oracle_count=$("$BBSMINE" count --index "$WORK/smoke.seg" \
    --items "${QUERIES[$i]}" | sed -n 's/^ *estimate \([0-9][0-9]*\).*/\1/p')
  if [[ "$router_count" != "$oracle_count" ]]; then
    echo "MISMATCH on {${QUERIES[$i]}}: router=$router_count oracle=$oracle_count"
    exit 1
  fi
  echo "   {${QUERIES[$i]}} -> $router_count (matches oracle)"
done

echo "== router MINE vs single-node oracle daemon (bit-identity)"
"$BBSMINE" client --port "$RPORT" --verb MINE --minsup 0.01 --top 15 \
  --json > "$WORK/mine-router.json"
"$BBSMINE" client --port "$ORACLE_PORT" --verb MINE --minsup 0.01 --top 15 \
  --json > "$WORK/mine-oracle.json"
python3 - "$WORK/mine-router.json" "$WORK/mine-oracle.json" <<'EOF'
import json, sys
router = json.load(open(sys.argv[1]))
oracle = json.load(open(sys.argv[2]))
assert router['ok'] and oracle['ok'], (router, oracle)
assert not router['degraded'], router
for key in ('patterns', 'total_frequent', 'transactions', 'min_support'):
    assert router[key] == oracle[key], (
        f'MINE {key} differs:\n  router: {router[key]}\n  oracle: {oracle[key]}')
ex = router['exchange']
assert ex['tau'] >= 1 and ex['candidates'] > 0, ex
print('   MINE bit-identical:', router['total_frequent'], 'frequent,',
      len(router['patterns']), 'returned, tau', ex['tau'])
EOF

echo "== INSERT routes to the tail shard and moves the cluster count"
before=$("$BBSMINE" client --port "$RPORT" --verb COUNT --items "3,17,42" \
  --json | python3 -c "import json,sys;print(json.load(sys.stdin)['count'])")
"$BBSMINE" client --port "$RPORT" --verb INSERT --items "3,17,42" \
  --json > "$WORK/insert.json"
python3 - "$WORK/insert.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r
assert r['shard'] == 2, r  # the tail of the transaction-range partition
assert r['transactions'] == 3001, r  # cluster-wide total
print('   INSERT landed on shard', r['shard'], 'cluster total', r['transactions'])
EOF
after=$("$BBSMINE" client --port "$RPORT" --verb COUNT --items "3,17,42" \
  --json | python3 -c "import json,sys;print(json.load(sys.stdin)['count'])")
[[ "$after" -eq $((before + 1)) ]] || {
  echo "INSERT did not advance the routed count: $before -> $after"; exit 1; }
echo "   count {3,17,42}: $before -> $after"

echo "== Bloofi pruning skipped at least one shard"
"$BBSMINE" client --port "$RPORT" --verb STATS --json > "$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r
report = r['report']
assert report['kind'] == 'bbsrouter_service', report['kind']
cluster = report['cluster']
assert cluster['role'] == 'router'
assert cluster['shards_total'] == 3 and cluster['shards_up'] == 3, cluster
pruned = cluster['pruned_shard_queries']
assert pruned > 0, 'absent-item queries never pruned a shard'
assert sum(s['requests'] for s in cluster['shards']) > 0
print('   pruning OK:', pruned, 'shard fan-outs skipped;',
      'per-shard requests', [s['requests'] for s in cluster['shards']])
EOF

echo "== SIGKILL shard 1 mid-traffic -> degraded answers, not failures"
(
  for _ in $(seq 1 40); do
    "$BBSMINE" client --port "$RPORT" --verb COUNT --items 161 \
      --json >/dev/null 2>&1 || true
    sleep 0.05
  done
) &
TRAFFIC_PID=$!
ALL_PIDS+=("$TRAFFIC_PID")
sleep 0.4
kill -KILL "${SHARD_PIDS[1]}"
wait "$TRAFFIC_PID" || true

"$BBSMINE" client --port "$RPORT" --verb COUNT --items 161 \
  --json > "$WORK/degraded.json" 2> "$WORK/degraded.err"
grep -q "degraded answer" "$WORK/degraded.err" || {
  echo "client printed no degraded warning"; cat "$WORK/degraded.err"; exit 1; }
python3 - "$WORK/degraded.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r  # degraded, but still an answer
assert r['degraded'] is True, r
assert r['missing_shards'] == [1], r
assert r['count'] > 0
print('   degraded COUNT OK:', r['count'], 'from the survivors, missing', r['missing_shards'])
EOF
"$BBSMINE" client --port "$RPORT" --verb MINE --minsup 0.05 --top 5 \
  --json | python3 -c "import json,sys;r=json.load(sys.stdin);\
assert r['ok'] and r['degraded'] and r['missing_shards']==[1],r;\
print('   degraded MINE OK:', r['total_frequent'], 'frequent from the survivors')"

echo "== graceful SIGTERM drain"
kill -TERM "$RPID"
EXIT_CODE=0
wait "$RPID" || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 0 ]] || {
  echo "router exited with $EXIT_CODE"; cat "$WORK/router.log"; exit 1; }
grep -q "bbsrouter draining" "$WORK/router.log"
grep -q "bbsrouter exited cleanly (2/3 shards up" "$WORK/router.log"

echo "== validating router service report"
python3 - "$WORK/router-report.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['schema_version'] == 1, r['schema_version']
assert r['kind'] == 'bbsrouter_service', r['kind']
svc = r['service']
assert svc['draining'] is True
assert svc['transactions'] == 3001, svc['transactions']
c = r['cluster']
assert c['role'] == 'router'
assert c['shards_total'] == 3 and c['shards_up'] == 2, c
shards = c['shards']
assert len(shards) == 3
assert shards[1]['up'] is False and shards[1]['errors'] > 0, shards[1]
for s in shards:
    for key in ('endpoint', 'requests', 'pruned_queries', 'hedged', 'latency_us'):
        assert key in s, f'shard row missing {key}'
assert c['degraded_responses'] > 0, c
assert 'fanout_us' in c, 'cluster fan-out histogram missing'
print('   router report OK:', c['shards_up'], 'of', c['shards_total'],
      'shards up,', r['metrics']['counters']['requests_total'], 'requests')
EOF

for pid in "${SHARD_PIDS[0]}" "${SHARD_PIDS[2]}"; do stop_pid "$pid"; done

echo "== bench leg: same data behind 1 / 2 / 4 shards -> $CLUSTER_JSON"
for n in 1 2 4; do
  start_fleet "$n" "$WORK/bench$n"
  start_router "$WORK/bench$n.router.log" "$SHARD_SPEC"
  "$BBSBENCH" --target "127.0.0.1:$RPORT" --seed 42 --rate 200 \
    --duration-s 2 --items 200 --connections 8 \
    --mix-ping 5 --mix-count 80 --mix-insert 0 --mix-mine 10 --mix-stats 5 \
    --out "$WORK/bench$n.json" >/dev/null
  stop_pid "$RPID"
  for pid in "${SHARD_PIDS[@]}"; do stop_pid "$pid"; done
  echo "   fleet of $n benched"
done

python3 - "$WORK" "$CLUSTER_JSON" <<'EOF'
import json, sys
work, out = sys.argv[1], sys.argv[2]
fleets = []
for n in (1, 2, 4):
    r = json.load(open(f'{work}/bench{n}.json'))
    assert r['kind'] == 'bbsbench_service', r['kind']
    totals = r['totals']
    assert totals['ok'] == totals['sent'], (n, totals)
    cluster = r['cluster']
    assert cluster['role'] == 'router', (n, cluster)
    assert cluster['shards_total'] == n and cluster['shards_up'] == n, (n, cluster)
    shards = cluster['shards']
    assert len(shards) == n
    assert sum(s['requests'] for s in shards) > 0, (n, shards)
    fleets.append({
        'shards': n,
        'totals': totals,
        'count_latency_us': r['verbs']['COUNT']['latency_us'],
        'mine_latency_us': r['verbs']['MINE']['latency_us'],
        'cluster': cluster,
    })
report = {
    'schema_version': 1,
    'kind': 'bbsmine_cluster_bench',
    'config': {
        'transactions': 3000, 'items': 200, 'data_seed': 11,
        'bench_seed': 42, 'rate_rps': 200.0, 'duration_s': 2,
        'note': 'same total data split across 1 / 2 / 4 bbsmined shards '
                'behind one bbsrouter',
    },
    'fleets': fleets,
}
json.dump(report, open(out, 'w'), indent=2)
print('   BENCH_cluster.json OK: COUNT p50 by fleet size',
      {f['shards']: f['count_latency_us']['p50'] for f in fleets})
EOF

stop_pid "$ORACLE_PID"
echo "cluster smoke test PASSED"
