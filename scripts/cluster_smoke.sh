#!/usr/bin/env bash
# End-to-end smoke test for the bbsrouter sharded cluster (run by the CI
# cluster-smoke job, and runnable locally):
#
#   1. generate a dataset, split it 3 ways with `bbsmine split`, build a
#      per-shard segmented index for each part plus a full index and a
#      single-node oracle daemon over the concatenated data;
#   2. start 3 bbsmined shards and a bbsrouter in front of them;
#   3. diff router COUNT answers against the offline oracle and router
#      MINE output against the oracle daemon — both must be bit-identical;
#   4. INSERT through the router (tail-shard routing) and verify the count
#      and the cluster-wide transaction total move;
#   5. require the Bloofi routing tree to have pruned at least one shard
#      fan-out (absent-item queries cannot cover any shard signature);
#   6. kill one shard with SIGKILL mid-traffic and require degraded-but-
#      answering COUNT/MINE responses carrying the missing-shard list;
#   7. SIGTERM the router and require a clean drain plus a schema-valid
#      bbsrouter service report with a populated cluster section;
#   8. failover leg: a two-shard fleet whose tail shard is a durable
#      semi-sync primary (bbsmined --repl-ack) with a warm follower
#      (bbsmined --follow); kill -9 the primary mid-INSERT-burst, require
#      the router to promote the follower within a deadline, then diff
#      COUNT/MINE bit-for-bit against an offline oracle rebuilt from the
#      acked-INSERT log, and require the fenced old primary (restarted on
#      its old port) to never be consulted again;
#   9. bench leg: run the same fixed-seed bbsbench --target load against
#      fleets of 1, 2 and 4 shards over the same total data and compose
#      the tracked BENCH_cluster.json (schema + per-shard breakdown
#      validated).
#
# Usage: scripts/cluster_smoke.sh [BUILD_DIR] [CLUSTER_JSON]
#   (defaults: build, BENCH_cluster.json in the current directory)

set -euo pipefail

BUILD_DIR="${1:-build}"
CLUSTER_JSON="${2:-BENCH_cluster.json}"
BBSMINE="$BUILD_DIR/tools/bbsmine"
BBSMINED="$BUILD_DIR/tools/bbsmined"
BBSROUTER="$BUILD_DIR/tools/bbsrouter"
BBSBENCH="$BUILD_DIR/tools/bbsbench"
WORK="$(mktemp -d)"

# Every spawned process, tracked by PID saved at spawn time — never matched
# by name (pgrep -f would race other jobs and even this script's own shell).
ALL_PIDS=()

cleanup() {
  for pid in "${ALL_PIDS[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -KILL "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# start_daemon LOG INDEX DB -> sets DPID / DPORT.
start_daemon() {
  local log=$1 index=$2 db=$3
  "$BBSMINED" --index "$index" --db "$db" --port 0 > "$log" 2>&1 &
  DPID=$!
  ALL_PIDS+=("$DPID")
  DPORT=""
  for _ in $(seq 1 50); do
    DPORT=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [[ -n "$DPORT" ]] && break
    kill -0 "$DPID" || { cat "$log"; exit 1; }
    sleep 0.2
  done
  [[ -n "$DPORT" ]] || { echo "daemon never reported its port"; cat "$log"; exit 1; }
}

# start_router LOG SHARDSPEC [extra flags...] -> sets RPID / RPORT.
start_router() {
  local log=$1 spec=$2
  shift 2
  "$BBSROUTER" --shards "$spec" --port 0 "$@" > "$log" 2>&1 &
  RPID=$!
  ALL_PIDS+=("$RPID")
  RPORT=""
  for _ in $(seq 1 50); do
    RPORT=$(sed -n 's/^bbsrouter listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [[ -n "$RPORT" ]] && break
    kill -0 "$RPID" || { cat "$log"; exit 1; }
    sleep 0.2
  done
  [[ -n "$RPORT" ]] || { echo "router never reported its port"; cat "$log"; exit 1; }
}

# split_and_index N PREFIX -> builds PREFIX.<i>.db / PREFIX.<i>.seg and
# sets SHARD_SPEC / SHARD_PIDS / SHARD_PORTS for a running fleet of N.
start_fleet() {
  local n=$1 prefix=$2
  "$BBSMINE" split --db "$WORK/smoke.db" --shards "$n" \
    --out-prefix "$prefix" >/dev/null
  SHARD_SPEC=""
  SHARD_PIDS=()
  SHARD_PORTS=()
  for i in $(seq 0 $((n - 1))); do
    "$BBSMINE" build --db "$prefix.$i.db" --out "$prefix.$i.seg" \
      --bits 800 --hashes 3 --segment-capacity 512 >/dev/null
    start_daemon "$prefix.$i.log" "$prefix.$i.seg" "$prefix.$i.db"
    SHARD_PIDS+=("$DPID")
    SHARD_PORTS+=("$DPORT")
    SHARD_SPEC+="${SHARD_SPEC:+,}127.0.0.1:$DPORT"
  done
}

stop_pid() {
  local pid=$1
  kill -TERM "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
}

json_field() {
  python3 -c "import json,sys;r=json.load(open(sys.argv[1]));print(r$2)" "$1"
}

echo "== generating dataset, full oracle index, 3-way split"
"$BBSMINE" gen --out "$WORK/smoke.db" --txns 3000 --items 200 --t 8 --i 4 \
  --patterns 50 --seed 11 >/dev/null
"$BBSMINE" build --db "$WORK/smoke.db" --out "$WORK/smoke.seg" \
  --bits 800 --hashes 3 --segment-capacity 512 >/dev/null
start_daemon "$WORK/oracle.log" "$WORK/smoke.seg" "$WORK/smoke.db"
ORACLE_PID=$DPID
ORACLE_PORT=$DPORT
start_fleet 3 "$WORK/shard"
echo "   3 shards up (ports ${SHARD_PORTS[*]}), oracle on $ORACLE_PORT"

echo "== starting bbsrouter"
start_router "$WORK/router.log" "$SHARD_SPEC" \
  --report-out "$WORK/router-report.json"
grep -q "(3 shards, 3 up" "$WORK/router.log" || {
  echo "router banner reports a partial fleet"; cat "$WORK/router.log"; exit 1; }
echo "   router on port $RPORT (pid $RPID)"

"$BBSMINE" client --port "$RPORT" --verb PING >/dev/null

# The daemon_smoke query mix: frequent heads of seed 11's distribution,
# pairs, a triple, and absent items (both zero paths and pruning bait).
QUERIES=(161 27 111 "128,161" "111,161" "27,128" "27,111,161" 17 "3,17,42"
         199 "161,199")

echo "== ${#QUERIES[@]} router COUNT answers vs offline oracle"
for i in "${!QUERIES[@]}"; do
  router_count=$("$BBSMINE" client --port "$RPORT" --verb COUNT \
    --items "${QUERIES[$i]}" --json | python3 -c \
    "import json,sys;r=json.load(sys.stdin);assert r['ok'],r;\
assert not r['degraded'],r;print(r['count'])")
  oracle_count=$("$BBSMINE" count --index "$WORK/smoke.seg" \
    --items "${QUERIES[$i]}" | sed -n 's/^ *estimate \([0-9][0-9]*\).*/\1/p')
  if [[ "$router_count" != "$oracle_count" ]]; then
    echo "MISMATCH on {${QUERIES[$i]}}: router=$router_count oracle=$oracle_count"
    exit 1
  fi
  echo "   {${QUERIES[$i]}} -> $router_count (matches oracle)"
done

echo "== router MINE vs single-node oracle daemon (bit-identity)"
"$BBSMINE" client --port "$RPORT" --verb MINE --minsup 0.01 --top 15 \
  --json > "$WORK/mine-router.json"
"$BBSMINE" client --port "$ORACLE_PORT" --verb MINE --minsup 0.01 --top 15 \
  --json > "$WORK/mine-oracle.json"
python3 - "$WORK/mine-router.json" "$WORK/mine-oracle.json" <<'EOF'
import json, sys
router = json.load(open(sys.argv[1]))
oracle = json.load(open(sys.argv[2]))
assert router['ok'] and oracle['ok'], (router, oracle)
assert not router['degraded'], router
for key in ('patterns', 'total_frequent', 'transactions', 'min_support'):
    assert router[key] == oracle[key], (
        f'MINE {key} differs:\n  router: {router[key]}\n  oracle: {oracle[key]}')
ex = router['exchange']
assert ex['tau'] >= 1 and ex['candidates'] > 0, ex
print('   MINE bit-identical:', router['total_frequent'], 'frequent,',
      len(router['patterns']), 'returned, tau', ex['tau'])
EOF

echo "== INSERT routes to the tail shard and moves the cluster count"
before=$("$BBSMINE" client --port "$RPORT" --verb COUNT --items "3,17,42" \
  --json | python3 -c "import json,sys;print(json.load(sys.stdin)['count'])")
"$BBSMINE" client --port "$RPORT" --verb INSERT --items "3,17,42" \
  --json > "$WORK/insert.json"
python3 - "$WORK/insert.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r
assert r['shard'] == 2, r  # the tail of the transaction-range partition
assert r['transactions'] == 3001, r  # cluster-wide total
print('   INSERT landed on shard', r['shard'], 'cluster total', r['transactions'])
EOF
after=$("$BBSMINE" client --port "$RPORT" --verb COUNT --items "3,17,42" \
  --json | python3 -c "import json,sys;print(json.load(sys.stdin)['count'])")
[[ "$after" -eq $((before + 1)) ]] || {
  echo "INSERT did not advance the routed count: $before -> $after"; exit 1; }
echo "   count {3,17,42}: $before -> $after"

echo "== Bloofi pruning skipped at least one shard"
"$BBSMINE" client --port "$RPORT" --verb STATS --json > "$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r
report = r['report']
assert report['kind'] == 'bbsrouter_service', report['kind']
cluster = report['cluster']
assert cluster['role'] == 'router'
assert cluster['shards_total'] == 3 and cluster['shards_up'] == 3, cluster
pruned = cluster['pruned_shard_queries']
assert pruned > 0, 'absent-item queries never pruned a shard'
assert sum(s['requests'] for s in cluster['shards']) > 0
print('   pruning OK:', pruned, 'shard fan-outs skipped;',
      'per-shard requests', [s['requests'] for s in cluster['shards']])
EOF

echo "== SIGKILL shard 1 mid-traffic -> degraded answers, not failures"
(
  for _ in $(seq 1 40); do
    "$BBSMINE" client --port "$RPORT" --verb COUNT --items 161 \
      --json >/dev/null 2>&1 || true
    sleep 0.05
  done
) &
TRAFFIC_PID=$!
ALL_PIDS+=("$TRAFFIC_PID")
sleep 0.4
kill -KILL "${SHARD_PIDS[1]}"
wait "$TRAFFIC_PID" || true

"$BBSMINE" client --port "$RPORT" --verb COUNT --items 161 \
  --json > "$WORK/degraded.json" 2> "$WORK/degraded.err"
grep -q "degraded answer" "$WORK/degraded.err" || {
  echo "client printed no degraded warning"; cat "$WORK/degraded.err"; exit 1; }
python3 - "$WORK/degraded.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r  # degraded, but still an answer
assert r['degraded'] is True, r
assert r['missing_shards'] == [1], r
assert r['count'] > 0
print('   degraded COUNT OK:', r['count'], 'from the survivors, missing', r['missing_shards'])
EOF
"$BBSMINE" client --port "$RPORT" --verb MINE --minsup 0.05 --top 5 \
  --json | python3 -c "import json,sys;r=json.load(sys.stdin);\
assert r['ok'] and r['degraded'] and r['missing_shards']==[1],r;\
print('   degraded MINE OK:', r['total_frequent'], 'frequent from the survivors')"

echo "== graceful SIGTERM drain"
kill -TERM "$RPID"
EXIT_CODE=0
wait "$RPID" || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 0 ]] || {
  echo "router exited with $EXIT_CODE"; cat "$WORK/router.log"; exit 1; }
grep -q "bbsrouter draining" "$WORK/router.log"
grep -q "bbsrouter exited cleanly (2/3 shards up" "$WORK/router.log"

echo "== validating router service report"
python3 - "$WORK/router-report.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['schema_version'] == 1, r['schema_version']
assert r['kind'] == 'bbsrouter_service', r['kind']
svc = r['service']
assert svc['draining'] is True
assert svc['transactions'] == 3001, svc['transactions']
c = r['cluster']
assert c['role'] == 'router'
assert c['shards_total'] == 3 and c['shards_up'] == 2, c
shards = c['shards']
assert len(shards) == 3
assert shards[1]['up'] is False and shards[1]['errors'] > 0, shards[1]
for s in shards:
    for key in ('endpoint', 'requests', 'pruned_queries', 'hedged', 'latency_us'):
        assert key in s, f'shard row missing {key}'
assert c['degraded_responses'] > 0, c
assert 'fanout_us' in c, 'cluster fan-out histogram missing'
# No shard in this fleet has a replica: the kill above degrades, it must
# not count as a failover, and the replication section reports disabled.
assert c['failovers'] == 0, c
for s in shards:
    assert 'replica' not in s and s['failed_over'] is False, s
    assert s['active'] == 'primary' and s['term'] >= 1, s
repl = r['replication']
assert repl == {'enabled': False, 'role': 'router', 'failovers': 0}, repl
print('   router report OK:', c['shards_up'], 'of', c['shards_total'],
      'shards up,', r['metrics']['counters']['requests_total'], 'requests')
EOF

for pid in "${SHARD_PIDS[0]}" "${SHARD_PIDS[2]}"; do stop_pid "$pid"; done

echo "== failover leg: replicated tail shard, kill -9 the primary mid-burst"
# Topology: shard 0 is a static index over half the dataset; shard 1 is an
# empty durable semi-sync primary with a warm follower. Every failover-leg
# INSERT routes to shard 1 and — because of --repl-ack — is on the
# follower before the client sees OK, so the acked log written below is
# exactly the set of transactions that must survive the kill.
FO="$WORK/fo"
"$BBSMINE" split --db "$WORK/smoke.db" --shards 2 --out-prefix "$FO" \
  >/dev/null
"$BBSMINE" build --db "$FO.0.db" --out "$FO.0.seg" \
  --bits 800 --hashes 3 --segment-capacity 512 >/dev/null
start_daemon "$FO.s0.log" "$FO.0.seg" "$FO.0.db"
FO_S0_PID=$DPID
FO_S0_PORT=$DPORT

# Empty transaction DBs make the replicated pair MINE-capable from birth
# (INSERT and the replication apply path both append to the daemon's DB).
: > "$FO.empty.fimi"
"$BBSMINE" convert --in "$FO.empty.fimi" --out "$FO.primary.db" >/dev/null
"$BBSMINE" convert --in "$FO.empty.fimi" --out "$FO.replica.db" >/dev/null

# start_replicated LOG DUR DB [flags...] -> DPID / DPORT. The explicit
# --bits/--hashes match `bbsmine build` above: the router refuses a fleet
# with mixed hash configs.
start_replicated() {
  local log=$1 dur=$2 db=$3
  shift 3
  "$BBSMINED" --durable-dir "$dur" --db "$db" --bits 800 --hashes 3 \
    --segment-capacity 512 --fsync always --port 0 "$@" > "$log" 2>&1 &
  DPID=$!
  ALL_PIDS+=("$DPID")
  DPORT=""
  for _ in $(seq 1 50); do
    DPORT=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [[ -n "$DPORT" ]] && break
    kill -0 "$DPID" || { cat "$log"; exit 1; }
    sleep 0.2
  done
  [[ -n "$DPORT" ]] || { echo "daemon never reported its port"; cat "$log"; exit 1; }
}

start_replicated "$FO.primary.log" "$WORK/fo-primary" "$FO.primary.db" \
  --repl-ack
FO_P_PID=$DPID
FO_P_PORT=$DPORT
start_replicated "$FO.replica.log" "$WORK/fo-replica" "$FO.replica.db" \
  --follow "127.0.0.1:$FO_P_PORT"
FO_R_PID=$DPID
FO_R_PORT=$DPORT
echo "   shard 0 on $FO_S0_PORT; shard 1 primary $FO_P_PORT -> follower $FO_R_PORT"

# The follower must be attached before the burst: semi-sync acks degrade
# (not block) without one, and the leg's loss accounting needs every acked
# INSERT follower-durable.
for _ in $(seq 1 50); do
  followers=$("$BBSMINE" client --port "$FO_P_PORT" --verb STATS --json \
    | python3 -c "import json,sys;\
print(json.load(sys.stdin)['report']['replication']['followers'])")
  [[ "$followers" == "1" ]] && break
  sleep 0.2
done
[[ "$followers" == "1" ]] || {
  echo "follower never attached"; cat "$FO.replica.log"; exit 1; }

echo "== replication STATS sections on both roles"
"$BBSMINE" client --port "$FO_P_PORT" --verb STATS --json \
  > "$FO.primary-stats.json"
python3 - "$FO.primary-stats.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r
repl = r['report']['replication']
assert repl['enabled'] is True and repl['role'] == 'primary', repl
assert repl['term'] == 1 and repl['promotions'] == 0, repl
assert repl['semi_sync'] is True and repl['followers'] == 1, repl
for key in ('last_acked_txn', 'lag_records', 'lag_bytes', 'records_shipped',
            'bytes_shipped', 'ack_timeouts'):
    assert key in repl, f'missing replication.{key}'
print('   primary replication OK: semi-sync,', repl['followers'], 'follower')
EOF
"$BBSMINE" client --port "$FO_R_PORT" --verb STATS --json \
  > "$FO.replica-stats.json"
python3 - "$FO.replica-stats.json" "$FO_P_PORT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r
repl = r['report']['replication']
assert repl['enabled'] is True and repl['role'] == 'follower', repl
assert repl['connected'] is True, repl
assert repl['primary'].endswith(':' + sys.argv[2]), repl
assert repl['crc_rejects'] == 0, repl
for key in ('last_applied_txn', 'lag_records', 'records_applied',
            'reconnects'):
    assert key in repl, f'missing replication.{key}'
print('   follower replication OK: tailing', repl['primary'])
EOF

start_router "$FO.router.log" \
  "127.0.0.1:$FO_S0_PORT,127.0.0.1:$FO_P_PORT/127.0.0.1:$FO_R_PORT" \
  --probe-interval-ms 200 --probe-timeout-ms 1000 \
  --report-out "$FO.router-report.json"
grep -q "(2 shards, 2 up" "$FO.router.log" || {
  echo "failover fleet came up partial"; cat "$FO.router.log"; exit 1; }
echo "   router on port $RPORT"

# Deterministic INSERT sequence: itemset #n is a pure function of n, so
# the oracle can reconstruct "the first R transactions" after the dust
# settles (same idiom as crash_torture.sh).
fo_itemset() {
  local n=$1
  echo "$((n % 40)),$((40 + (n * 7) % 40)),$((80 + (n * 3) % 40))"
}

FO_ACKED="$FO.acked.fimi"
: > "$FO_ACKED"

# Sequential burst through the router (no client retries: a duplicate
# INSERT applied once to the dying primary and once to the promoted
# follower would corrupt the oracle). An itemset is logged only after its
# OK response; the first failure — the kill landing — stops the burst,
# so at most the single in-flight INSERT is indeterminate.
(
  n=0
  while (( n < 400 )); do
    items=$(fo_itemset "$n")
    "$BBSMINE" client --port "$RPORT" --verb INSERT --items "$items" \
      --json > "$FO.last-insert.json" 2>/dev/null || exit 0
    echo "$items" | tr ',' ' ' >> "$FO_ACKED"
    n=$((n + 1))
  done
) &
BURST_PID=$!
ALL_PIDS+=("$BURST_PID")

sleep 1
kill -KILL "$FO_P_PID"
echo "   primary (pid $FO_P_PID) killed -9 mid-burst"
wait "$BURST_PID" || true

echo "== waiting for the router to promote the follower"
PROMOTED=""
for _ in $(seq 1 100); do
  PROMOTED=$("$BBSMINE" client --port "$RPORT" --verb STATS --json \
    2>/dev/null | python3 -c "import json,sys;\
print(json.load(sys.stdin)['report']['cluster']['failovers'])" \
    2>/dev/null || echo "")
  [[ "$PROMOTED" == "1" ]] && break
  sleep 0.2
done
[[ "$PROMOTED" == "1" ]] || {
  echo "router never promoted the replica"; cat "$FO.router.log"; exit 1; }
grep -q "failed over to replica 127.0.0.1:$FO_R_PORT at term 2" \
  "$FO.router.log" || {
  echo "no promotion line in the router log"; cat "$FO.router.log"; exit 1; }

# Reconcile the one indeterminate INSERT: the promoted shard must hold
# every acked transaction, plus at most the in-flight one whose response
# the kill swallowed (semi-sync already copied it to the follower).
ACKED_N=$(wc -l < "$FO_ACKED")
CLUSTER_TXNS=$("$BBSMINE" client --port "$RPORT" --verb STATS --json \
  | python3 -c "import json,sys;r=json.load(sys.stdin);assert r['ok'],r;\
print(r['report']['service']['transactions'])")
PROMOTED_TXNS=$((CLUSTER_TXNS - 1500))
if [[ "$PROMOTED_TXNS" -eq $((ACKED_N + 1)) ]]; then
  fo_itemset "$ACKED_N" | tr ',' ' ' >> "$FO_ACKED"
  ACKED_N=$((ACKED_N + 1))
  echo "   in-flight INSERT #$((ACKED_N - 1)) reached the follower; oracle extended"
elif [[ "$PROMOTED_TXNS" -ne "$ACKED_N" ]]; then
  echo "ACKED INSERT LOST: follower holds $PROMOTED_TXNS of $ACKED_N acked"
  exit 1
fi
echo "   $ACKED_N burst transactions survive on the promoted follower"

echo "== post-failover COUNT/MINE vs acked-prefix oracle (bit-identity)"
"$BBSMINE" convert --in "$FO.0.db" --out "$FO.0.fimi" >/dev/null
cat "$FO.0.fimi" "$FO_ACKED" > "$FO.oracle.fimi"
"$BBSMINE" convert --in "$FO.oracle.fimi" --out "$FO.oracle.db" >/dev/null
"$BBSMINE" build --db "$FO.oracle.db" --out "$FO.oracle.seg" \
  --bits 800 --hashes 3 --segment-capacity 512 >/dev/null
FO_QUERIES=(161 27 "128,161" 17 "0,40,80" "5,75,95" "13,53" 39 "150,151"
            "7,49,101")
for q in "${FO_QUERIES[@]}"; do
  router_count=$("$BBSMINE" client --port "$RPORT" --verb COUNT \
    --items "$q" --json | python3 -c \
    "import json,sys;r=json.load(sys.stdin);assert r['ok'],r;\
assert not r['degraded'],r;print(r['count'])")
  oracle_count=$("$BBSMINE" count --index "$FO.oracle.seg" \
    --items "$q" | sed -n 's/^ *estimate \([0-9][0-9]*\).*/\1/p')
  if [[ "$router_count" != "$oracle_count" ]]; then
    echo "MISMATCH on {$q}: router=$router_count oracle=$oracle_count"
    exit 1
  fi
done
echo "   ${#FO_QUERIES[@]} COUNT answers match the acked-prefix oracle"

start_daemon "$FO.oracle.log" "$FO.oracle.seg" "$FO.oracle.db"
FO_ORACLE_PID=$DPID
FO_ORACLE_PORT=$DPORT
"$BBSMINE" client --port "$RPORT" --verb MINE --minsup 0.01 --top 15 \
  --json > "$FO.mine-router.json"
"$BBSMINE" client --port "$FO_ORACLE_PORT" --verb MINE --minsup 0.01 \
  --top 15 --json > "$FO.mine-oracle.json"
python3 - "$FO.mine-router.json" "$FO.mine-oracle.json" <<'EOF'
import json, sys
router = json.load(open(sys.argv[1]))
oracle = json.load(open(sys.argv[2]))
assert router['ok'] and oracle['ok'], (router, oracle)
assert not router['degraded'], router
for key in ('patterns', 'total_frequent', 'transactions', 'min_support'):
    assert router[key] == oracle[key], (
        f'post-failover MINE {key} differs:\n'
        f'  router: {router[key]}\n  oracle: {oracle[key]}')
print('   post-failover MINE bit-identical:', router['total_frequent'],
      'frequent over', router['transactions'], 'transactions')
EOF
stop_pid "$FO_ORACLE_PID"

echo "== promoted daemon wears the primary role at term 2"
"$BBSMINE" client --port "$FO_R_PORT" --verb STATS --json | python3 -c \
  "import json,sys;r=json.load(sys.stdin);repl=r['report']['replication'];\
assert repl['role']=='primary' and repl['term']==2,repl;\
assert repl['promotions']==1,repl;\
print('   promoted:', repl['role'], 'term', repl['term'])"

echo "== fenced old primary: restarted on its old port, never consulted"
"$BBSMINED" --durable-dir "$WORK/fo-primary" --db "$FO.primary.db" \
  --bits 800 --hashes 3 --segment-capacity 512 --fsync always \
  --port "$FO_P_PORT" > "$FO.zombie.log" 2>&1 &
ZOMBIE_PID=$!
ALL_PIDS+=("$ZOMBIE_PID")
for _ in $(seq 1 50); do
  grep -q "bbsmined listening" "$FO.zombie.log" && break
  kill -0 "$ZOMBIE_PID" || { cat "$FO.zombie.log"; exit 1; }
  sleep 0.2
done
# The zombie recovered its WAL and answers on the address the router once
# routed to — the sentinel proves the router no longer does. It lands on
# the promoted follower, and the zombie never sees it.
"$BBSMINE" client --port "$RPORT" --verb INSERT --items "150,151" \
  --json | python3 -c "import json,sys;r=json.load(sys.stdin);\
assert r['ok'] and r['shard']==1,r"
for _ in $(seq 1 5); do
  "$BBSMINE" client --port "$RPORT" --verb COUNT --items "150,151" \
    --json | python3 -c "import json,sys;r=json.load(sys.stdin);\
assert r['ok'] and not r['degraded'],r;\
assert r['count']==1,('sentinel count',r['count'])"
done
zombie_count=$("$BBSMINE" client --port "$FO_P_PORT" --verb COUNT \
  --items "150,151" --json | python3 -c \
  "import json,sys;r=json.load(sys.stdin);assert r['ok'],r;print(r['count'])")
[[ "$zombie_count" == "0" ]] || {
  echo "fencing breach: the demoted primary saw the sentinel INSERT"
  exit 1; }
echo "   sentinel INSERT served by the replica only; zombie count 0"

echo "== failover-leg router drain + report"
kill -TERM "$RPID"
EXIT_CODE=0
wait "$RPID" || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 0 ]] || {
  echo "router exited with $EXIT_CODE"; cat "$FO.router.log"; exit 1; }
grep -q "bbsrouter exited cleanly (2/2 shards up" "$FO.router.log"
python3 - "$FO.router-report.json" "$FO_R_PORT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['schema_version'] == 1, r['schema_version']
assert r['kind'] == 'bbsrouter_service', r['kind']
c = r['cluster']
assert c['failovers'] == 1, c
tail = c['shards'][1]
assert tail['failed_over'] is True and tail['active'] == 'replica', tail
assert tail['term'] == 2 and tail['up'] is True, tail
assert tail['replica'].endswith(':' + sys.argv[2]), tail
assert tail['endpoint'] == tail['replica'], tail
repl = r['replication']
assert repl == {'enabled': True, 'role': 'router', 'failovers': 1}, repl
print('   failover report OK: shard 1 active on', tail['endpoint'],
      'at term', tail['term'])
EOF
stop_pid "$ZOMBIE_PID"
stop_pid "$FO_R_PID"
stop_pid "$FO_S0_PID"

echo "== bench leg: same data behind 1 / 2 / 4 shards -> $CLUSTER_JSON"
for n in 1 2 4; do
  start_fleet "$n" "$WORK/bench$n"
  start_router "$WORK/bench$n.router.log" "$SHARD_SPEC"
  "$BBSBENCH" --target "127.0.0.1:$RPORT" --seed 42 --rate 200 \
    --duration-s 2 --items 200 --connections 8 \
    --mix-ping 5 --mix-count 80 --mix-insert 0 --mix-mine 10 --mix-stats 5 \
    --out "$WORK/bench$n.json" >/dev/null
  stop_pid "$RPID"
  for pid in "${SHARD_PIDS[@]}"; do stop_pid "$pid"; done
  echo "   fleet of $n benched"
done

python3 - "$WORK" "$CLUSTER_JSON" <<'EOF'
import json, sys
work, out = sys.argv[1], sys.argv[2]
fleets = []
for n in (1, 2, 4):
    r = json.load(open(f'{work}/bench{n}.json'))
    assert r['kind'] == 'bbsbench_service', r['kind']
    totals = r['totals']
    assert totals['ok'] == totals['sent'], (n, totals)
    cluster = r['cluster']
    assert cluster['role'] == 'router', (n, cluster)
    assert cluster['shards_total'] == n and cluster['shards_up'] == n, (n, cluster)
    shards = cluster['shards']
    assert len(shards) == n
    assert sum(s['requests'] for s in shards) > 0, (n, shards)
    fleets.append({
        'shards': n,
        'totals': totals,
        'count_latency_us': r['verbs']['COUNT']['latency_us'],
        'mine_latency_us': r['verbs']['MINE']['latency_us'],
        'cluster': cluster,
    })
report = {
    'schema_version': 1,
    'kind': 'bbsmine_cluster_bench',
    'config': {
        'transactions': 3000, 'items': 200, 'data_seed': 11,
        'bench_seed': 42, 'rate_rps': 200.0, 'duration_s': 2,
        'note': 'same total data split across 1 / 2 / 4 bbsmined shards '
                'behind one bbsrouter',
    },
    'fleets': fleets,
}
json.dump(report, open(out, 'w'), indent=2)
print('   BENCH_cluster.json OK: COUNT p50 by fleet size',
      {f['shards']: f['count_latency_us']['p50'] for f in fleets})
EOF

stop_pid "$ORACLE_PID"
echo "cluster smoke test PASSED"
