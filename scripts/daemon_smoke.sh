#!/usr/bin/env bash
# End-to-end smoke test for the bbsmined daemon (run by the CI daemon-smoke
# job, and runnable locally):
#
#   1. generate a dataset, build a segmented index;
#   2. start bbsmined on an ephemeral port;
#   3. fire N concurrent `bbsmine client` COUNT queries and diff every
#      answer against the offline `bbsmine count` oracle over the same
#      saved index (the daemon must be bit-identical);
#   4. exercise INSERT and verify counts move with the new epoch;
#   5. SIGTERM the daemon and require a clean exit plus a schema-valid
#      service report with non-empty latency histograms;
#   6. durable leg: restart with --durable-dir, INSERT, SIGTERM, restart
#      again and require the insert to survive — checking the recovery
#      counters in both the startup banner and the STATS report;
#   7. mmap leg: serve the same index with --index-backend mmap, diff the
#      full query list against the offline oracle again (answers must stay
#      bit-identical when slices are paged from disk instead of heap), and
#      require STATS to report the mmap backend with zero resident slice
#      bytes.
#
# Usage: scripts/daemon_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
BBSMINE="$BUILD_DIR/tools/bbsmine"
BBSMINED="$BUILD_DIR/tools/bbsmined"
BBSBENCH="$BUILD_DIR/tools/bbsbench"
WORK="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== generating dataset and segmented index"
"$BBSMINE" gen --out "$WORK/smoke.db" --txns 3000 --items 200 --t 8 --i 4 \
  --patterns 50 --seed 11
"$BBSMINE" build --db "$WORK/smoke.db" --out "$WORK/smoke.seg" \
  --bits 800 --hashes 3 --segment-capacity 512

echo "== starting bbsmined"
"$BBSMINED" --index "$WORK/smoke.seg" --db "$WORK/smoke.db" --port 0 \
  --report-out "$WORK/service-report.json" > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
    "$WORK/daemon.log" | head -1)
  [[ -n "$PORT" ]] && break
  kill -0 "$DAEMON_PID" || { cat "$WORK/daemon.log"; exit 1; }
  sleep 0.2
done
[[ -n "$PORT" ]] || { echo "daemon never reported its port"; exit 1; }
echo "   listening on port $PORT (pid $DAEMON_PID)"

"$BBSMINE" client --port "$PORT" --verb PING >/dev/null

# A mix of frequent items (161, 27, 111, 128 are the head of seed 11's
# distribution), frequent pairs, a triple, and absent items — both the
# dense and the zero paths of the count pipeline get exercised.
QUERIES=(161 27 111 "128,161" "111,161" "27,128" "27,111,161" 17 "3,17,42"
         199 "161,199")

echo "== ${#QUERIES[@]} concurrent client queries vs offline oracle"
CLIENT_PIDS=()
for i in "${!QUERIES[@]}"; do
  "$BBSMINE" client --port "$PORT" --verb COUNT --items "${QUERIES[$i]}" \
    --json > "$WORK/answer.$i.json" &
  CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done

for i in "${!QUERIES[@]}"; do
  daemon_count=$(python3 -c \
    "import json;r=json.load(open('$WORK/answer.$i.json'));\
assert r['ok'],r;print(r['count'])")
  oracle_count=$("$BBSMINE" count --index "$WORK/smoke.seg" \
    --items "${QUERIES[$i]}" | sed -n 's/^ *estimate \([0-9][0-9]*\).*/\1/p')
  if [[ "$daemon_count" != "$oracle_count" ]]; then
    echo "MISMATCH on {${QUERIES[$i]}}: daemon=$daemon_count oracle=$oracle_count"
    exit 1
  fi
  echo "   {${QUERIES[$i]}} -> $daemon_count (matches oracle)"
done

echo "== INSERT advances the epoch and the count"
before=$("$BBSMINE" client --port "$PORT" --verb COUNT --items "3,17,42" \
  --json | python3 -c "import json,sys;print(json.load(sys.stdin)['count'])")
"$BBSMINE" client --port "$PORT" --verb INSERT --items "3,17,42" >/dev/null
after=$("$BBSMINE" client --port "$PORT" --verb COUNT --items "3,17,42" \
  --json | python3 -c "import json,sys;print(json.load(sys.stdin)['count'])")
[[ "$after" -eq $((before + 1)) ]] || {
  echo "INSERT did not advance the count: $before -> $after"; exit 1; }
echo "   count {3,17,42}: $before -> $after"

"$BBSMINE" client --port "$PORT" --verb MINE --minsup 0.05 --top 3 >/dev/null
"$BBSMINE" client --port "$PORT" --verb STATS --json > "$WORK/stats.json"

echo "== graceful SIGTERM drain"
kill -TERM "$DAEMON_PID"
EXIT_CODE=0
wait "$DAEMON_PID" || EXIT_CODE=$?
DAEMON_PID=""
[[ "$EXIT_CODE" -eq 0 ]] || {
  echo "daemon exited with $EXIT_CODE"; cat "$WORK/daemon.log"; exit 1; }
grep -q "exited cleanly" "$WORK/daemon.log"

echo "== validating service report schema"
python3 - "$WORK/service-report.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['schema_version'] == 1, r['schema_version']
assert r['kind'] == 'bbsmined_service'
svc = r['service']
for key in ('uptime_seconds', 'epoch', 'transactions', 'segments',
            'snapshot_publications', 'snapshot_seals', 'draining',
            'mine_enabled'):
    assert key in svc, f'missing service.{key}'
assert svc['draining'] is True
m = r['metrics']
for section in ('counters', 'gauges', 'latency_us', 'batch'):
    assert section in m, f'missing metrics.{section}'
assert m['counters']['requests_total'] > 0
for verb in ('ping', 'count', 'insert', 'mine', 'stats'):
    h = m['latency_us'][verb]
    assert sum(h['by_depth']) + h['overflow'] == h['total'], verb
    assert h['total'] > 0, f'empty latency histogram for {verb}'
assert m['counters']['requests_count'] == m['latency_us']['count']['total']
# Live gauges sit next to the lifetime watermarks.
for key in ('queue_depth_now', 'active_connections_now'):
    assert key in m['gauges'], f'missing gauges.{key}'
assert m['gauges']['active_connections_now'] == 0  # report written post-drain
# Windowed metrics: the run is shorter than the lookback on a fresh
# daemon, so the recent deltas must equal the lifetime totals.
w = r['window']
for key in ('interval_seconds', 'slots', 'lookback_seconds',
            'covered_seconds', 'last_60s'):
    assert key in w, f'missing window.{key}'
recent = w['last_60s']
assert recent['counters']['requests_total'] == m['counters']['requests_total']
assert recent['latency_us']['count']['total'] == m['latency_us']['count']['total']
assert 'p50' in recent['latency_us']['count']
# A standalone daemon (no --durable-dir, no --follow) has no replication
# role; the section must still be present and explicitly disabled.
assert r['replication'] == {'enabled': False}, r['replication']
print('service report OK:', m['counters']['requests_total'], 'requests,',
      svc['transactions'], 'transactions at epoch', svc['epoch'],
      '| window covers', w['covered_seconds'], 's')
EOF

echo "== durable leg: INSERT -> SIGTERM -> restart -> COUNT"
DUR="$WORK/durable"

start_durable() {
  local log=$1
  "$BBSMINED" --durable-dir "$DUR" --index "$WORK/smoke.seg" \
    --db "$WORK/smoke.db" --fsync always --port 0 > "$log" 2>&1 &
  DAEMON_PID=$!
  PORT=""
  for _ in $(seq 1 50); do
    PORT=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [[ -n "$PORT" ]] && break
    kill -0 "$DAEMON_PID" || { cat "$log"; exit 1; }
    sleep 0.2
  done
  [[ -n "$PORT" ]] || { echo "daemon never reported its port"; exit 1; }
}

start_durable "$WORK/durable1.log"
grep -q "bbsmined recovery:" "$WORK/durable1.log" || {
  echo "durable start printed no recovery line"; cat "$WORK/durable1.log"
  exit 1; }

before=$("$BBSMINE" client --port "$PORT" --verb COUNT --items "3,17,42" \
  --json | python3 -c "import json,sys;print(json.load(sys.stdin)['count'])")
"$BBSMINE" client --port "$PORT" --verb INSERT --items "3,17,42" >/dev/null

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "durable daemon died on SIGTERM"; exit 1; }
DAEMON_PID=""
grep -q "bbsmined checkpointed" "$WORK/durable1.log" || {
  echo "no shutdown checkpoint"; cat "$WORK/durable1.log"; exit 1; }

start_durable "$WORK/durable2.log"
after=$("$BBSMINE" client --port "$PORT" --verb COUNT --items "3,17,42" \
  --json | python3 -c "import json,sys;print(json.load(sys.stdin)['count'])")
[[ "$after" -eq $((before + 1)) ]] || {
  echo "insert lost across restart: $before -> $after"; exit 1; }
echo "   count {3,17,42} survived the restart: $before -> $after"

"$BBSMINE" client --port "$PORT" --verb STATS --json > "$WORK/durable-stats.json"
python3 - "$WORK/durable-stats.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r
d = r['report']['durability']
assert d['enabled'] is True
for key in ('fsync_policy', 'checkpoint_every', 'wal_appends', 'wal_bytes',
            'checkpoints', 'checkpoint_loaded', 'recovered_records',
            'torn_tail_bytes', 'recovery_seconds',
            'wal_truncations_deferred'):
    assert key in d, f'missing durability.{key}'
assert d['wal_truncations_deferred'] == 0, 'no follower ever attached'
assert d['fsync_policy'] == 'always'
assert d['checkpoint_loaded'] is True, 'restart should load the checkpoint'
assert d['torn_tail_bytes'] == 0
# A durable daemon is a WALSTREAM-capable primary even with no follower
# attached: the replication section reports the source-side counters.
repl = r['report']['replication']
assert repl['enabled'] is True and repl['role'] == 'primary', repl
assert repl['term'] >= 1 and repl['promotions'] == 0, repl
assert repl['semi_sync'] is False and repl['followers'] == 0, repl
for key in ('last_acked_txn', 'lag_records', 'lag_bytes', 'records_shipped',
            'bytes_shipped', 'ack_timeouts'):
    assert key in repl, f'missing replication.{key}'
print('durability report OK: checkpoint loaded,',
      d['recovered_records'], 'WAL records replayed,',
      'replication role', repl['role'])
EOF

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "durable daemon died on SIGTERM"; exit 1; }
DAEMON_PID=""

echo "== mmap leg: serve sealed segments from disk, diff vs oracle"
"$BBSMINED" --index "$WORK/smoke.seg" --db "$WORK/smoke.db" \
  --index-backend mmap --port 0 > "$WORK/mmap.log" 2>&1 &
DAEMON_PID=$!
PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
    "$WORK/mmap.log" | head -1)
  [[ -n "$PORT" ]] && break
  kill -0 "$DAEMON_PID" || { cat "$WORK/mmap.log"; exit 1; }
  sleep 0.2
done
[[ -n "$PORT" ]] || { echo "mmap daemon never reported its port"; exit 1; }

for i in "${!QUERIES[@]}"; do
  daemon_count=$("$BBSMINE" client --port "$PORT" --verb COUNT \
    --items "${QUERIES[$i]}" --json | python3 -c \
    "import json,sys;r=json.load(sys.stdin);assert r['ok'],r;print(r['count'])")
  oracle_count=$("$BBSMINE" count --index "$WORK/smoke.seg" \
    --items "${QUERIES[$i]}" | sed -n 's/^ *estimate \([0-9][0-9]*\).*/\1/p')
  if [[ "$daemon_count" != "$oracle_count" ]]; then
    echo "MMAP MISMATCH on {${QUERIES[$i]}}: daemon=$daemon_count oracle=$oracle_count"
    exit 1
  fi
done
echo "   all ${#QUERIES[@]} answers match the oracle through the mmap backend"

"$BBSMINE" client --port "$PORT" --verb STATS --json > "$WORK/mmap-stats.json"
python3 - "$WORK/mmap-stats.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r
svc = r['report']['service']
assert svc['index_backend'] == 'mmap', svc['index_backend']
# Only the (initially empty) materialized tail may pin heap bytes; sealed
# slice data stays on disk behind the mapping.
assert svc['resident_slice_bytes'] < 100_000, svc['resident_slice_bytes']
for key in ('minor_faults', 'major_faults'):
    assert key in svc, f'missing service.{key}'
print('mmap STATS OK: backend', svc['index_backend'] + ',',
      svc['resident_slice_bytes'], 'resident slice bytes')
EOF

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "mmap daemon died on SIGTERM"; exit 1; }
DAEMON_PID=""

echo "== observability leg: sampled trace, slow log, flight recorder, DUMP"
"$BBSMINED" --index "$WORK/smoke.seg" --db "$WORK/smoke.db" --port 0 \
  --trace-out "$WORK/obs-trace.json" --trace-sample 1 \
  --slow-log "$WORK/obs-slow.jsonl" --slow-query-us 0 \
  --flight-recorder-size 32 --flight-out "$WORK/obs-flight.json" \
  > "$WORK/obs.log" 2>&1 &
DAEMON_PID=$!
PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
    "$WORK/obs.log" | head -1)
  [[ -n "$PORT" ]] && break
  kill -0 "$DAEMON_PID" || { cat "$WORK/obs.log"; exit 1; }
  sleep 0.2
done
[[ -n "$PORT" ]] || { echo "obs daemon never reported its port"; exit 1; }

# An open-loop COUNT burst over 16 connections: concurrent arrivals make
# the scheduler fuse batches, which the trace must show. --trace-ids tags
# every request "b7-<index>" so trace / slow-log records correlate.
"$BBSBENCH" --port "$PORT" --seed 7 --rate 2000 --duration-s 2 \
  --connections 16 --items 200 --query-len 2 --trace-ids \
  --mix-ping 0 --mix-count 100 --mix-insert 0 --mix-mine 0 --mix-stats 0 \
  --out "$WORK/obs-bench.json" >/dev/null

# One hand-tagged request, then DUMP must return its flight event.
"$BBSMINE" client --port "$PORT" --verb COUNT --items "128,161" \
  --trace-id "smoke-tagged" --json > /dev/null
"$BBSMINE" client --port "$PORT" --verb DUMP --json > "$WORK/obs-dump.json"
python3 - "$WORK/obs-dump.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['ok'], r
f = r['flight']
assert f['kind'] == 'bbsmined_flight_recorder', f['kind']
events = [e for c in f['connections'] for e in c['events']]
assert events, 'DUMP returned no flight events'
ids = {e['trace_id'] for e in events}
assert 'smoke-tagged' in ids, sorted(ids)[:10]
print('   DUMP OK:', len(f['connections']), 'connections,',
      len(events), 'recent events')
EOF

echo "== SIGTERM writes the trace and the flight dump"
kill -TERM "$DAEMON_PID"
EXIT_CODE=0
wait "$DAEMON_PID" || EXIT_CODE=$?
DAEMON_PID=""
[[ "$EXIT_CODE" -eq 0 ]] || {
  echo "obs daemon exited with $EXIT_CODE"; cat "$WORK/obs.log"; exit 1; }

echo "== validating sampled request trace"
python3 - "$WORK/obs-trace.json" <<'EOF'
import json, sys
from collections import defaultdict

t = json.load(open(sys.argv[1]))
events = t['traceEvents']
assert events, 'trace is empty'
for e in events:
    assert e['ph'] == 'X'
    for key in ('name', 'cat', 'ts', 'dur', 'pid', 'tid'):
        assert key in e, f'event missing {key}'
cats = {e['cat'] for e in events}
assert {'request', 'queue', 'batch', 'segment'} <= cats, cats

# Batch fusion must be visible: >= 2 request spans referencing the same
# count.batch span, each with its own queue-wait span.
requests_by_batch = defaultdict(list)
for e in events:
    if e['name'] == 'request' and 'batch' in e['args']:
        requests_by_batch[e['args']['batch']].append(e['args']['trace_id'])
batches = {e['args']['batch']: e['args'] for e in events
           if e['name'] == 'count.batch'}
waits_by_batch = defaultdict(set)
for e in events:
    if e['name'] == 'count.queue_wait':
        waits_by_batch[e['args']['batch']].add(e['args']['trace_id'])
fused = [b for b, ids in requests_by_batch.items()
         if len(ids) >= 2 and b in batches and batches[b]['size'] >= 2
         and len(waits_by_batch[b]) >= 2]
assert fused, (
    'no fused batch in the trace: '
    f'{len(requests_by_batch)} batches, all singletons')
assert any(tid.startswith('b7-') for ids in requests_by_batch.values()
           for tid in ids), 'bbsbench --trace-ids tags missing'
assert any('smoke-tagged' in ids for ids in requests_by_batch.values()), \
    'client --trace-id missing from the trace'
biggest = max(fused, key=lambda b: batches[b]['size'])
print('   trace OK:', len(events), 'events,', len(fused),
      'fused batches (largest size', str(batches[biggest]['size']) + ')')
EOF

echo "== validating slow-query log"
python3 - "$WORK/obs-slow.jsonl" "$WORK/obs-trace.json" <<'EOF'
import json, sys

records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
assert records, 'slow log is empty despite --slow-query-us 0'
for r in records:
    for key in ('at_us', 'trace_id', 'verb', 'latency_us', 'queue_wait_us',
                'batch_size', 'items', 'epoch', 'slice_words', 'backend',
                'outcome'):
        assert key in r, f'slow record missing {key}: {r}'
    assert r['outcome'] in ('ok', 'error'), r['outcome']
# Duplicate queries fused into one batch are answered from the shared
# unique's work, so individual records may touch 0 slice words — but the
# burst as a whole must show real slice traffic.
counts = [r for r in records if r['verb'] == 'COUNT']
assert counts, 'no COUNT records in the slow log'
assert any(r['slice_words'] > 0 for r in counts if r['outcome'] == 'ok')

# Every request was sampled (--trace-sample 1), so slow-log trace ids must
# also appear in the trace: the two planes correlate.
t = json.load(open(sys.argv[2]))
traced = {e['args']['trace_id'] for e in t['traceEvents']
          if 'trace_id' in e.get('args', {})}
overlap = {r['trace_id'] for r in counts} & traced
assert overlap, 'no slow-log trace_id found in the trace'
print('   slow log OK:', len(records), 'records,',
      len(overlap), 'trace-correlated COUNT ids')
EOF

echo "== validating shutdown flight dump"
python3 - "$WORK/obs-flight.json" <<'EOF'
import json, sys
f = json.load(open(sys.argv[1]))
assert f['schema_version'] == 1, f['schema_version']
assert f['kind'] == 'bbsmined_flight_recorder', f['kind']
assert f['ring_capacity'] == 32
conns = f['connections']
assert conns, 'flight dump has no connections'
total = 0
for c in conns:
    for key in ('connection', 'active', 'recorded', 'events'):
        assert key in c, f'connection missing {key}'
    for e in c['events']:
        for key in ('trace_id', 'verb', 'ok', 'latency_us'):
            assert key in e, f'flight event missing {key}'
    total += len(c['events'])
assert total > 0, 'flight dump holds no events'
print('   flight dump OK:', len(conns), 'connections,', total, 'events')
EOF

echo "daemon smoke test PASSED"
