#!/usr/bin/env bash
# Overhead gate for the bbsmined observability plane, measured end to end:
# two daemons serve the same index — one bare, one with the full plane
# armed at production settings (1-in-997 trace sampling, a 10 ms slow-query
# threshold, the flight recorder on) — and paired fixed-rate bbsbench runs
# compare COUNT p50 between them.
#
# Loopback p50 drifts a few percent between runs, so a single comparison
# cannot resolve a 2% bound. Each attempt therefore runs PAIRS paired
# benches (order alternated within each pair so warm-up bias cancels) and
# takes the median of the per-pair p50 ratios; a failing attempt is
# re-measured, because a real regression fails every attempt and noise
# does not repeat. bench/micro_service is the in-process version of this
# same comparison — faster, quieter, and the one CI gates merges on.
#
# Usage: scripts/service_overhead.sh [BUILD_DIR] [LIMIT_PCT]
#   (defaults: build, 2.0)

set -euo pipefail

BUILD_DIR="${1:-build}"
LIMIT_PCT="${2:-2.0}"
PAIRS="${PAIRS:-5}"
ATTEMPTS="${ATTEMPTS:-3}"
RATE="${RATE:-1200}"
DURATION_S="${DURATION_S:-3}"

BBSMINE="$BUILD_DIR/tools/bbsmine"
BBSMINED="$BUILD_DIR/tools/bbsmined"
BBSBENCH="$BUILD_DIR/tools/bbsbench"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [[ -n "$pid" ]] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== generating dataset and segmented index"
"$BBSMINE" gen --out "$WORK/bench.db" --txns 3000 --items 200 --t 8 --i 4 \
  --patterns 50 --seed 11 >/dev/null
"$BBSMINE" build --db "$WORK/bench.db" --out "$WORK/bench.seg" \
  --bits 800 --hashes 3 --segment-capacity 512 >/dev/null

start_daemon() {  # $1 = log file, $2... = extra flags
  local log=$1; shift
  "$BBSMINED" --index "$WORK/bench.seg" --db "$WORK/bench.db" --port 0 \
    "$@" > "$log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  local port=""
  for _ in $(seq 1 50); do
    port=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [[ -n "$port" ]] && break
    kill -0 "$pid" || { cat "$log" >&2; exit 1; }
    sleep 0.2
  done
  [[ -n "$port" ]] || { echo "daemon never reported its port" >&2; exit 1; }
  echo "$port"
}

echo "== starting bare and plane-armed daemons"
PORT_OFF=$(start_daemon "$WORK/off.log")
PORT_ON=$(start_daemon "$WORK/on.log" \
  --trace-out "$WORK/on-trace.json" --trace-sample 997 \
  --slow-log "$WORK/on-slow.jsonl" --slow-query-us 10000 \
  --flight-recorder-size 64)
echo "   bare on port $PORT_OFF, armed on port $PORT_ON"

count_p50() {  # $1 = port, $2 = out json, $3 = seed
  "$BBSBENCH" --port "$1" --seed "$3" --rate "$RATE" \
    --duration-s "$DURATION_S" --connections 16 --items 200 --query-len 2 \
    --mix-ping 0 --mix-count 100 --mix-insert 0 --mix-mine 0 --mix-stats 0 \
    --out "$2" >/dev/null
  python3 -c "import json,sys; r=json.load(open(sys.argv[1])); \
assert r['totals']['ok'] == r['totals']['sent'], r['totals']; \
print(r['verbs']['COUNT']['latency_us']['p50'])" "$2"
}

attempt=0
overhead=""
while (( attempt < ATTEMPTS )); do
  attempt=$((attempt + 1))
  ratios=()
  for pair in $(seq 1 "$PAIRS"); do
    seed=$((100 + attempt * 10 + pair))
    if (( pair % 2 == 1 )); then
      off_p50=$(count_p50 "$PORT_OFF" "$WORK/off.$attempt.$pair.json" "$seed")
      on_p50=$(count_p50 "$PORT_ON" "$WORK/on.$attempt.$pair.json" "$seed")
    else
      on_p50=$(count_p50 "$PORT_ON" "$WORK/on.$attempt.$pair.json" "$seed")
      off_p50=$(count_p50 "$PORT_OFF" "$WORK/off.$attempt.$pair.json" "$seed")
    fi
    ratios+=("$(python3 -c "print($on_p50 / $off_p50)")")
    echo "   attempt $attempt pair $pair: off p50 ${off_p50}us, on p50 ${on_p50}us"
  done
  overhead=$(python3 -c "
import statistics, sys
ratios = [float(r) for r in sys.argv[1:]]
print(f'{(statistics.median(ratios) - 1.0) * 100.0:.2f}')" "${ratios[@]}")
  echo "   attempt $attempt/$ATTEMPTS: median COUNT p50 overhead ${overhead}% (limit ${LIMIT_PCT}%)"
  if python3 -c "import sys; sys.exit(0 if $overhead < $LIMIT_PCT else 1)"; then
    echo "service overhead gate PASSED: ${overhead}% < ${LIMIT_PCT}%"
    exit 0
  fi
done

echo "service overhead gate FAILED: ${overhead}% >= ${LIMIT_PCT}%" >&2
exit 1
