#!/usr/bin/env bash
# Smoke test for the bbsbench traffic harness (run by the CI bench-smoke
# job, and runnable locally):
#
#   1. generate a dataset, build a segmented index, start bbsmined;
#   2. verify the request stream is deterministic: two --dump-stream runs
#      with the same seed must produce byte-identical streams, and a third
#      with a different seed must not;
#   3. run a short fixed-seed bbsbench against the daemon and validate the
#      BENCH_service.json schema (schema_version, kind, config echo,
#      per-verb p50/p95/p99, totals);
#   4. assert the client-vs-daemon cross-check: for MINE — the verb whose
#      service time dominates transport noise — client and daemon p50 must
#      land within one log2 bucket of each other;
#   5. run a tiny stepped-rate saturation search and require a populated
#      `saturation` section;
#   6. run the read-path benchmark (resident vs mmap-cold vs mmap-warm vs
#      folded) in quick mode and validate BENCH_readpath.json: the index
#      must exceed the synthetic memory budget, all backends must agree
#      bit-for-bit, and folding must shrink bytes >= 2x with zero
#      upper-bound violations.
#
# Usage: scripts/bench_smoke.sh [BUILD_DIR] [OUT_JSON] [READPATH_JSON]
#   (defaults: build, BENCH_service.json / BENCH_readpath.json in the
#   current directory)

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_service.json}"
READPATH_JSON="${3:-BENCH_readpath.json}"
BBSMINE="$BUILD_DIR/tools/bbsmine"
BBSMINED="$BUILD_DIR/tools/bbsmined"
BBSBENCH="$BUILD_DIR/tools/bbsbench"
WORK="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== stream determinism (no daemon needed)"
"$BBSBENCH" --dry-run --seed 42 --rate 800 --duration-s 2 \
  --dump-stream "$WORK/stream-a.txt" >/dev/null
"$BBSBENCH" --dry-run --seed 42 --rate 800 --duration-s 2 \
  --dump-stream "$WORK/stream-b.txt" >/dev/null
cmp "$WORK/stream-a.txt" "$WORK/stream-b.txt" \
  || { echo "same seed produced different streams"; exit 1; }
"$BBSBENCH" --dry-run --seed 43 --rate 800 --duration-s 2 \
  --dump-stream "$WORK/stream-c.txt" >/dev/null
if cmp -s "$WORK/stream-a.txt" "$WORK/stream-c.txt"; then
  echo "different seeds produced identical streams"; exit 1
fi
echo "   identical for seed 42, distinct for seed 43 ($(wc -l < "$WORK/stream-a.txt") requests)"

echo "== generating dataset and segmented index"
"$BBSMINE" gen --out "$WORK/bench.db" --txns 3000 --items 200 --t 8 --i 4 \
  --patterns 50 --seed 11 >/dev/null
"$BBSMINE" build --db "$WORK/bench.db" --out "$WORK/bench.seg" \
  --bits 800 --hashes 3 --segment-capacity 512 >/dev/null

echo "== starting bbsmined"
"$BBSMINED" --index "$WORK/bench.seg" --db "$WORK/bench.db" --port 0 \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/^bbsmined listening on [0-9.]*:\([0-9]*\).*/\1/p' \
    "$WORK/daemon.log" | head -1)
  [[ -n "$PORT" ]] && break
  kill -0 "$DAEMON_PID" || { cat "$WORK/daemon.log"; exit 1; }
  sleep 0.2
done
[[ -n "$PORT" ]] || { echo "daemon never reported its port"; exit 1; }
echo "   listening on port $PORT (pid $DAEMON_PID)"

echo "== fixed-seed bbsbench run"
"$BBSBENCH" --port "$PORT" --seed 42 --rate 400 --duration-s 4 \
  --items 200 --connections 16 --mix-mine 10 --mix-count 65 \
  --rate-steps 2 --rate-start 200 --rate-factor 2 --step-duration-s 2 \
  --slo-p99-ms 200 --slo-verb count --out "$OUT_JSON"

echo "== validating $OUT_JSON"
python3 - "$OUT_JSON" <<'EOF'
import json, sys

r = json.load(open(sys.argv[1]))
assert r["schema_version"] == 1, r["schema_version"]
assert r["kind"] == "bbsbench_service", r["kind"]
assert r["config"]["seed"] == 42
assert r["config"]["rate_rps"] == 400.0

verbs = r["verbs"]
assert "COUNT" in verbs and "MINE" in verbs, sorted(verbs)
for name, v in verbs.items():
    assert v["sent"] > 0, name
    lat = v["latency_us"]
    for q in ("p50", "p95", "p99"):
        assert lat[q] >= 0, (name, q)
    assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"], (name, lat)

totals = r["totals"]
assert totals["sent"] == sum(v["sent"] for v in verbs.values())
assert totals["scheduled"] == totals["sent"]
# The run must be healthy end to end: every request answered ok.
assert totals["ok"] == totals["sent"], totals
assert totals["achieved_rps"] > 0

# Client vs daemon cross-check on MINE: its service time (a full eclat
# mine) dwarfs transport noise, so both views of p50 must land within one
# log2 bucket. Fast verbs legitimately differ by a few buckets (client
# latency includes the round trip), so they are not asserted here.
mine = verbs["MINE"]
assert "daemon_latency_us" in mine, "daemon STATS cross-check missing"
assert mine["daemon_latency_us"]["total"] > 0
delta = mine["p50_bucket_delta"]
assert abs(delta) <= 1, f"MINE client/daemon p50 differ by {delta} buckets"

# Windowed-metrics cross-check: the run is shorter than the 60 s lookback
# on a fresh daemon, so STATS' last_60s section covers the whole run and
# its MINE p50 must also land within one log2 bucket of the client
# reservoir. COUNT only checks presence — transport dominates fast verbs.
recent = mine["daemon_recent_latency_us"]
assert recent["total"] > 0, "empty last_60s MINE histogram"
rdelta = mine["recent_p50_bucket_delta"]
assert abs(rdelta) <= 1, f"MINE client/last_60s p50 differ by {rdelta} buckets"
count_recent = verbs["COUNT"]["daemon_recent_latency_us"]
assert count_recent["total"] > 0, "empty last_60s COUNT histogram"

sat = r["saturation"]
assert sat["slo_verb"] == "COUNT"
assert len(sat["steps"]) == 2
for step in sat["steps"]:
    assert step["offered_rps"] > 0 and step["p99_ms"] >= 0

print("   BENCH_service.json schema OK; MINE p50 bucket delta =", delta,
      "(lifetime),", rdelta, "(last_60s)")
EOF

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
DAEMON_PID=""

echo "== read-path benchmark (resident / mmap / folded)"
# Quick mode builds a ~1.5 MB index; the 1 MiB budget keeps the
# larger-than-memory demonstration honest at smoke scale.
"$BUILD_DIR/bench/readpath" --quick --budget-bytes $((1 << 20)) \
  --out "$READPATH_JSON"

echo "== validating $READPATH_JSON"
python3 - "$READPATH_JSON" <<'EOF'
import json, sys

r = json.load(open(sys.argv[1]))
assert r["schema_version"] == 1, r["schema_version"]
assert r["kind"] == "bbsmine_readpath", r["kind"]

# The point of the benchmark: the slice data must not fit the synthetic
# resident-memory budget, yet the mmap legs serve it with zero heap bytes.
assert r["index"]["exceeds_budget"] is True, r["index"]
assert r["index"]["slice_bytes"] > r["config"]["budget_bytes"]

legs = r["legs"]
for name in ("resident", "mmap_cold", "mmap_warm", "folded"):
    assert name in legs, f"missing leg {name}"
    assert legs[name]["seconds"] > 0, name
assert legs["mmap_cold"]["resident_slice_bytes"] == 0
assert legs["mmap_warm"]["resident_slice_bytes"] == 0

# All exact backends agree bit-for-bit.
assert r["parity"]["mmap_matches_resident"] is True
assert legs["resident"]["checksum"] == legs["mmap_cold"]["checksum"]
assert legs["mmap_cold"]["checksum"] == legs["mmap_warm"]["checksum"]

# Fold compaction: >= 2x smaller, every estimate still an upper bound.
folded = legs["folded"]
assert folded["bytes_ratio"] >= 2.0, folded
assert folded["upper_bound_violations"] == 0, folded

print("   BENCH_readpath.json OK:",
      r["index"]["slice_bytes"], "slice bytes vs budget",
      r["config"]["budget_bytes"], "| fold ratio",
      folded["bytes_ratio"])
EOF

echo "== bench smoke passed"
